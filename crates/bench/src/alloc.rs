//! A counting global allocator for allocation-budget benchmarks.
//!
//! Every binary in this crate (the stopwatch benches and the `repro` tool)
//! routes its heap traffic through [`CountingAlloc`], which forwards to the
//! system allocator while maintaining process-wide atomic counters. The
//! baseline runner ([`crate::baseline`]) snapshots the counters around a
//! single-threaded simulation to obtain *exact, deterministic* per-run
//! allocation counts — the quantity the CI perf gate pins, because unlike
//! wall-clock throughput it is identical on every machine.
//!
//! The counters use relaxed atomics: they are totals, not synchronization,
//! and the measured regions are single-threaded.

#![allow(unsafe_code)] // GlobalAlloc is an unsafe trait; this is the one spot.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper that counts every allocation.
pub struct CountingAlloc;

impl CountingAlloc {
    fn on_alloc(size: usize) {
        ALLOCS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(size as u64, Relaxed);
        let live = LIVE_BYTES.fetch_add(size as u64, Relaxed) + size as u64;
        PEAK_LIVE_BYTES.fetch_max(live, Relaxed);
    }

    fn on_free(size: usize) {
        FREES.fetch_add(1, Relaxed);
        LIVE_BYTES.fetch_sub(size as u64, Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        Self::on_free(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Count a realloc as one allocation event plus the byte delta,
            // so growth strategies show up in the totals.
            Self::on_free(layout.size());
            Self::on_alloc(new_size);
        }
        p
    }
}

/// A point-in-time copy of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events since process start (reallocs count once).
    pub allocs: u64,
    /// Bytes requested by those events.
    pub alloc_bytes: u64,
    /// Deallocation events.
    pub frees: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// High-water mark of live bytes since the last [`reset_peak`].
    pub peak_live_bytes: u64,
}

/// Reads the counters. Exact when no other thread is allocating.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Relaxed),
        alloc_bytes: ALLOC_BYTES.load(Relaxed),
        frees: FREES.load(Relaxed),
        live_bytes: LIVE_BYTES.load(Relaxed),
        peak_live_bytes: PEAK_LIVE_BYTES.load(Relaxed),
    }
}

/// Restarts peak-live tracking from the current live level, so a
/// subsequent [`snapshot`] reports the high-water mark of the measured
/// region alone.
pub fn reset_peak() {
    PEAK_LIVE_BYTES.store(LIVE_BYTES.load(Relaxed), Relaxed);
}

/// What one region of code allocated: the difference between two
/// snapshots bracketing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocDelta {
    /// Allocation events inside the region.
    pub allocs: u64,
    /// Bytes requested inside the region.
    pub alloc_bytes: u64,
    /// Peak live bytes above the region's starting level.
    pub peak_above_start: u64,
}

/// Runs `f` and returns its result together with exact allocation counts
/// for the call. Only meaningful when no other thread allocates
/// concurrently (the baseline runner is single-threaded).
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, AllocDelta) {
    reset_peak();
    let before = snapshot();
    let out = f();
    let after = snapshot();
    (
        out,
        AllocDelta {
            allocs: after.allocs - before.allocs,
            alloc_bytes: after.alloc_bytes - before.alloc_bytes,
            peak_above_start: after.peak_live_bytes.saturating_sub(before.live_bytes),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_a_vec_allocation() {
        let (v, delta) = measure(|| vec![0u8; 4096]);
        assert_eq!(v.len(), 4096);
        assert!(delta.allocs >= 1, "vec must have allocated: {delta:?}");
        assert!(delta.alloc_bytes >= 4096, "{delta:?}");
        assert!(delta.peak_above_start >= 4096, "{delta:?}");
    }

    #[test]
    fn measure_sees_no_allocations_in_pure_code() {
        let (sum, delta) = measure(|| (0u64..100).sum::<u64>());
        assert_eq!(sum, 4950);
        assert_eq!(delta.allocs, 0, "{delta:?}");
    }

    #[test]
    fn counters_monotonically_increase() {
        let a = snapshot();
        let _v = std::hint::black_box(vec![1u32; 100]);
        let b = snapshot();
        assert!(b.allocs >= a.allocs);
        assert!(b.alloc_bytes >= a.alloc_bytes);
    }
}
