//! # mcloud-bench
//!
//! The experiment layer: one function per table/figure of the paper's
//! evaluation (Section 6), shared by the `repro` binary (which prints the
//! paper-style series and writes CSV) and the stopwatch benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;

use std::path::PathBuf;

/// Directory where `repro` writes its CSV outputs (`<workspace>/results`).
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results")
}
