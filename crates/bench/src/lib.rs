//! # mcloud-bench
//!
//! The experiment layer: one function per table/figure of the paper's
//! evaluation (Section 6), shared by the `repro` binary (which prints the
//! paper-style series and writes CSV) and the stopwatch benches.

#![warn(missing_docs)]
// `deny` rather than `forbid`: the one allocator module needs an
// `allow(unsafe_code)` override for its `GlobalAlloc` impl.
#![deny(unsafe_code)]

pub mod alloc;
pub mod baseline;
pub mod experiments;
pub mod harness;

use std::path::PathBuf;

/// Every binary in this crate counts its allocations, so the baseline
/// runner can report exact per-simulation allocation budgets.
#[global_allocator]
static COUNTING_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

/// Directory where `repro` writes its CSV outputs (`<workspace>/results`).
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results")
}
