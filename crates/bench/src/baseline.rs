//! The committed performance baseline: machine-readable engine throughput
//! and allocation budgets, plus the regression gate CI runs against them.
//!
//! `repro bench-json` measures every workload in [`workloads`] — the
//! paper's 1°/2°/4° mosaics plus the synthetic scale-up 8°/16° presets
//! (~12k/~49k tasks), each in all three data-management modes — and writes
//! `BENCH_baseline.json` at the workspace root. Two kinds of numbers are
//! recorded per workload:
//!
//! * **Deterministic**: tasks, engine events per simulation, allocation
//!   count / bytes / peak live bytes per simulation (from the
//!   [`crate::alloc`] counting allocator). Identical on every machine for
//!   a given source tree, so the CI gate compares them *strictly*: any
//!   increase over the committed baseline fails.
//! * **Environment-dependent**: simulations/sec and events/sec. These are
//!   gated tolerantly (fail only when more than 30% below baseline) so the
//!   gate catches order-of-magnitude regressions without flaking on
//!   machine noise.
//!
//! The JSON is hand-emitted with fixed key order so a re-run on identical
//! hardware diffs minimally, and parsed back with a small field scanner —
//! no external dependencies.

use std::fmt::Write as _;
use std::time::Instant;

use mcloud_core::{simulate, DataMode, ExecConfig};
use mcloud_dag::Workflow;
use mcloud_montage::{generate, MosaicConfig};

use crate::alloc;

/// Mosaic sizes measured by the baseline: the paper's three canonical
/// workflows plus the scale-up presets from the follow-on literature
/// (Juve et al. / Berriman et al. run Montage at far larger scales).
pub const BASELINE_DEGREES: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// One workload measured by the baseline: a mosaic size and a data mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Mosaic side length in degrees.
    pub degrees: f64,
    /// Data-management mode.
    pub mode: DataMode,
}

impl Workload {
    /// Stable workload identifier, e.g. `4deg/regular`.
    pub fn name(&self) -> String {
        format!("{}deg/{}", self.degrees, self.mode.label())
    }

    /// The workflow this workload simulates.
    pub fn workflow(&self) -> Workflow {
        generate(&MosaicConfig::new(self.degrees))
    }

    /// The execution plan: the paper's on-demand provisioning (ample
    /// processors), which exercises the engine's peak event rate.
    pub fn config(&self) -> ExecConfig {
        ExecConfig::on_demand(self.mode)
    }
}

/// Every workload the baseline measures, in a fixed order.
pub fn workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    for degrees in BASELINE_DEGREES {
        for mode in DataMode::ALL {
            out.push(Workload { degrees, mode });
        }
    }
    out
}

/// Measured numbers for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMeasurement {
    /// Workload identifier (`<degrees>deg/<mode>`).
    pub name: String,
    /// Task count of the simulated workflow.
    pub tasks: u64,
    /// Engine events processed by one simulation (deterministic).
    pub events: u64,
    /// Heap allocations one simulation performs (deterministic).
    pub allocs_per_sim: u64,
    /// Bytes those allocations request (deterministic).
    pub alloc_bytes_per_sim: u64,
    /// Peak live heap the simulation holds above its starting level
    /// (deterministic).
    pub peak_live_bytes: u64,
    /// Simulations per second (environment-dependent).
    pub sims_per_sec: f64,
    /// Engine events per second (environment-dependent).
    pub events_per_sec: f64,
}

impl WorkloadMeasurement {
    /// Allocations divided by tasks — the headline hot-path health number.
    pub fn allocs_per_task(&self) -> f64 {
        self.allocs_per_sim as f64 / self.tasks.max(1) as f64
    }
}

/// A full baseline: one measurement per workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Per-workload measurements, in [`workloads`] order.
    pub workloads: Vec<WorkloadMeasurement>,
}

/// Measures one workload: a warm-up run, one counted run for the
/// deterministic numbers, then as many timed runs as fit `budget_ms`.
pub fn measure_workload(w: &Workload, budget_ms: u64) -> WorkloadMeasurement {
    let wf = w.workflow();
    let cfg = w.config();
    // Warm-up: touches every code path and lets the allocator's internal
    // arenas settle so the counted run sees steady-state behaviour.
    let warm = simulate(&wf, &cfg);
    let events = warm.events_processed;
    let (_, delta) = alloc::measure(|| std::hint::black_box(simulate(&wf, &cfg)));

    // Throughput: time each simulation individually until the budget is
    // spent (at least one) and keep the *fastest*. The best-observed rate
    // measures what the machine can do; unlike a whole-budget average it is
    // insensitive to scheduler noise and frequency dips, which keeps
    // same-machine re-measurements inside the gate's tolerance band. Timer
    // overhead is negligible: even the smallest workload runs for ~100 us.
    let budget_s = budget_ms as f64 / 1e3;
    let mut best_per_sim_s = f64::INFINITY;
    let mut runs = 0u32;
    let all = Instant::now();
    loop {
        let start = Instant::now();
        std::hint::black_box(simulate(&wf, &cfg));
        best_per_sim_s = best_per_sim_s.min(start.elapsed().as_secs_f64());
        runs += 1;
        if all.elapsed().as_secs_f64() >= budget_s || runs >= 10_000 {
            break;
        }
    }
    let per_sim_s = best_per_sim_s.max(1e-9);

    WorkloadMeasurement {
        name: w.name(),
        tasks: wf.num_tasks() as u64,
        events,
        allocs_per_sim: delta.allocs,
        alloc_bytes_per_sim: delta.alloc_bytes,
        peak_live_bytes: delta.peak_above_start,
        sims_per_sec: 1.0 / per_sim_s,
        events_per_sec: events as f64 / per_sim_s,
    }
}

/// Measures every workload. `budget_ms` is the per-workload timing budget.
pub fn measure_all(budget_ms: u64, mut progress: impl FnMut(&WorkloadMeasurement)) -> Baseline {
    let mut out = Vec::new();
    for w in workloads() {
        let m = measure_workload(&w, budget_ms);
        progress(&m);
        out.push(m);
    }
    Baseline { workloads: out }
}

// --- JSON ------------------------------------------------------------------

/// Schema tag written into (and required from) the baseline file.
pub const SCHEMA: &str = "mcloud-bench-baseline/v1";

/// Serializes a baseline as pretty-printed JSON with a fixed key order.
pub fn to_json(b: &Baseline) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
    s.push_str("  \"workloads\": [\n");
    for (i, w) in b.workloads.iter().enumerate() {
        let comma = if i + 1 < b.workloads.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"tasks\": {}, \"events\": {}, \
             \"allocs_per_sim\": {}, \"alloc_bytes_per_sim\": {}, \
             \"peak_live_bytes\": {}, \"allocs_per_task\": {:.2}, \
             \"sims_per_sec\": {:.2}, \"events_per_sec\": {:.0}}}{comma}",
            w.name,
            w.tasks,
            w.events,
            w.allocs_per_sim,
            w.alloc_bytes_per_sim,
            w.peak_live_bytes,
            w.allocs_per_task(),
            w.sims_per_sec,
            w.events_per_sec,
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pulls `"key": <number>` out of a JSON object line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls `"key": "<string>"` out of a JSON object line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Parses a baseline file produced by [`to_json`].
///
/// # Errors
/// Returns a message when the schema tag is missing/mismatched or a
/// workload line lacks a required field.
pub fn from_json(text: &str) -> Result<Baseline, String> {
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("baseline file does not carry schema {SCHEMA:?}"));
    }
    let mut workloads = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('{') || !line.contains("\"name\"") {
            continue;
        }
        let get = |key: &str| {
            num_field(line, key).ok_or_else(|| format!("missing numeric field {key:?}: {line}"))
        };
        workloads.push(WorkloadMeasurement {
            name: str_field(line, "name").ok_or_else(|| format!("missing name: {line}"))?,
            tasks: get("tasks")? as u64,
            events: get("events")? as u64,
            allocs_per_sim: get("allocs_per_sim")? as u64,
            alloc_bytes_per_sim: get("alloc_bytes_per_sim")? as u64,
            peak_live_bytes: get("peak_live_bytes")? as u64,
            sims_per_sec: get("sims_per_sec")?,
            events_per_sec: get("events_per_sec")?,
        });
    }
    if workloads.is_empty() {
        return Err("baseline file contains no workloads".into());
    }
    Ok(Baseline { workloads })
}

// --- the regression gate ---------------------------------------------------

/// Fractional throughput loss tolerated before the gate fails (30%).
pub const THROUGHPUT_TOLERANCE: f64 = 0.30;

/// Compares a fresh measurement against the committed baseline.
///
/// Returns the list of human-readable violations (empty = gate passes):
/// * any *increase* in allocations or allocated bytes per simulation, or
///   in events per simulation — these are deterministic, so an increase
///   is a real regression, never noise;
/// * an events/sec drop of more than [`THROUGHPUT_TOLERANCE`].
///
/// Improvements never fail the gate; re-baseline to lock them in.
pub fn compare(current: &Baseline, committed: &Baseline) -> Vec<String> {
    let mut violations = Vec::new();
    for c in &current.workloads {
        let Some(b) = committed.workloads.iter().find(|w| w.name == c.name) else {
            violations.push(format!(
                "{}: not present in the committed baseline (re-run `repro bench-json --out`)",
                c.name
            ));
            continue;
        };
        if c.allocs_per_sim > b.allocs_per_sim {
            violations.push(format!(
                "{}: allocations per simulation regressed {} -> {}",
                c.name, b.allocs_per_sim, c.allocs_per_sim
            ));
        }
        if c.alloc_bytes_per_sim > b.alloc_bytes_per_sim {
            violations.push(format!(
                "{}: allocated bytes per simulation regressed {} -> {}",
                c.name, b.alloc_bytes_per_sim, c.alloc_bytes_per_sim
            ));
        }
        if c.events != b.events {
            violations.push(format!(
                "{}: events per simulation changed {} -> {} (semantics drift?)",
                c.name, b.events, c.events
            ));
        }
        let floor = b.events_per_sec * (1.0 - THROUGHPUT_TOLERANCE);
        if c.events_per_sec < floor {
            violations.push(format!(
                "{}: events/sec fell more than {:.0}% below baseline ({:.0} < {:.0})",
                c.name,
                THROUGHPUT_TOLERANCE * 100.0,
                c.events_per_sec,
                floor
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        Baseline {
            workloads: vec![WorkloadMeasurement {
                name: "1deg/regular".into(),
                tasks: 203,
                events: 1000,
                allocs_per_sim: 42,
                alloc_bytes_per_sim: 4096,
                peak_live_bytes: 2048,
                sims_per_sec: 1234.5,
                events_per_sec: 1_234_500.0,
            }],
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let b = sample();
        let parsed = from_json(&to_json(&b)).unwrap();
        assert_eq!(parsed.workloads.len(), 1);
        let (a, p) = (&b.workloads[0], &parsed.workloads[0]);
        assert_eq!(a.name, p.name);
        assert_eq!(a.tasks, p.tasks);
        assert_eq!(a.events, p.events);
        assert_eq!(a.allocs_per_sim, p.allocs_per_sim);
        assert_eq!(a.alloc_bytes_per_sim, p.alloc_bytes_per_sim);
        assert_eq!(a.peak_live_bytes, p.peak_live_bytes);
        assert!((a.sims_per_sec - p.sims_per_sec).abs() < 0.01);
        assert!((a.events_per_sec - p.events_per_sec).abs() < 1.0);
    }

    #[test]
    fn rejects_wrong_schema_and_empty_files() {
        assert!(from_json("{}").is_err());
        assert!(from_json("{\"schema\": \"other/v9\", \"workloads\": []}").is_err());
    }

    #[test]
    fn identical_baselines_pass_the_gate() {
        let b = sample();
        assert!(compare(&b, &b).is_empty());
    }

    #[test]
    fn allocation_increase_fails_strictly() {
        let committed = sample();
        let mut current = sample();
        current.workloads[0].allocs_per_sim += 1;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("allocations per simulation"), "{v:?}");
    }

    #[test]
    fn allocation_decrease_passes() {
        let committed = sample();
        let mut current = sample();
        current.workloads[0].allocs_per_sim -= 10;
        current.workloads[0].alloc_bytes_per_sim -= 100;
        assert!(compare(&current, &committed).is_empty());
    }

    #[test]
    fn throughput_gate_is_tolerant_not_absent() {
        let committed = sample();
        let mut current = sample();
        // 20% slower: within tolerance.
        current.workloads[0].events_per_sec = committed.workloads[0].events_per_sec * 0.8;
        assert!(compare(&current, &committed).is_empty());
        // 40% slower: out of tolerance.
        current.workloads[0].events_per_sec = committed.workloads[0].events_per_sec * 0.6;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("events/sec"), "{v:?}");
    }

    #[test]
    fn event_count_drift_is_flagged() {
        let committed = sample();
        let mut current = sample();
        current.workloads[0].events -= 1;
        let v = compare(&current, &committed);
        assert!(v.iter().any(|m| m.contains("semantics drift")), "{v:?}");
    }

    #[test]
    fn missing_workload_is_flagged() {
        let committed = Baseline { workloads: vec![] };
        // An empty committed set can't happen via from_json, but the gate
        // still reports the mismatch rather than silently passing.
        let v = compare(&sample(), &committed);
        assert!(v[0].contains("not present"), "{v:?}");
    }

    #[test]
    fn workload_list_covers_all_sizes_and_modes() {
        let ws = workloads();
        assert_eq!(ws.len(), BASELINE_DEGREES.len() * DataMode::ALL.len());
        let names: Vec<String> = ws.iter().map(Workload::name).collect();
        assert!(names.contains(&"4deg/regular".to_string()));
        assert!(names.contains(&"16deg/remote-io".to_string()));
    }

    #[test]
    fn tiny_workload_measures_deterministically() {
        // The smallest workload twice over: the deterministic columns must
        // agree exactly between independent measurements.
        let w = Workload {
            degrees: 1.0,
            mode: DataMode::Regular,
        };
        let a = measure_workload(&w, 1);
        let b = measure_workload(&w, 1);
        assert_eq!(a.tasks, 203);
        assert!(a.events > 0);
        assert_eq!(a.events, b.events);
        assert_eq!(a.allocs_per_sim, b.allocs_per_sim);
        assert_eq!(a.alloc_bytes_per_sim, b.alloc_bytes_per_sim);
        assert_eq!(a.peak_live_bytes, b.peak_live_bytes);
    }
}
