//! The committed performance baseline: machine-readable engine throughput
//! and allocation budgets, plus the regression gate CI runs against them.
//!
//! `repro bench-json` measures every workload in [`workloads`] — the
//! paper's 1°/2°/4° mosaics plus the synthetic scale-up 8°/16° presets
//! (~12k/~49k tasks), each in all three data-management modes — and writes
//! `BENCH_baseline.json` at the workspace root. Two kinds of numbers are
//! recorded per workload:
//!
//! * **Deterministic**: tasks, engine events per simulation, allocation
//!   count / bytes / peak live bytes per simulation (from the
//!   [`crate::alloc`] counting allocator). Identical on every machine for
//!   a given source tree, so the CI gate compares them *strictly*: any
//!   increase over the committed baseline fails.
//! * **Environment-dependent**: simulations/sec and events/sec. These are
//!   gated tolerantly (fail only when more than 70% below baseline) so the
//!   gate catches order-of-magnitude regressions without flaking on
//!   machine noise.
//!
//! Schema v2 adds the batch-throughput columns:
//!
//! * `batch_allocs_per_sim` — allocations of one simulation on a *warm*
//!   [`SimScratch`] (deterministic; strictly gated, and capped at
//!   [`WARM_ALLOC_BUDGET`] for the paper-sized 1–4° workloads);
//! * `batch_sims_per_sec` — throughput of [`mcloud_core::simulate_batch`]
//!   over the persistent worker pool (environment-dependent; gated
//!   tolerantly, and only when the lane count matches the committed file);
//! * a top-level `workers`/`host_parallelism` pair recording the lane
//!   count and core count of the measuring machine, plus informational
//!   worker-count `scaling` rows for `1deg/regular`.
//!
//! When the measuring machine actually has parallelism to exploit
//! (`workers > 1` and `host_parallelism > 1`), the gate also requires
//! batch throughput to beat single-sim throughput by
//! [`BATCH_SPEEDUP_GATE`]× on the headline `1deg/regular` and
//! `4deg/regular` rows. Both sides of that ratio come from the *same*
//! measurement run, so the check never compares across machines.
//!
//! Schema v3 adds the throughput-*flatness* rows: per data mode, the ratio
//! of 1° to 16° events/sec. The paper's experiment is a size sweep, so the
//! simulator must not get slower *per event* as the mosaic grows; the
//! binary-heap/pointer-chasing kernel degraded ~12x from 1° to 16° on the
//! original baseline machine, while the cache-native kernel (calendar
//! queue + struct-of-arrays engine state) holds ~2x. Like the batch
//! speedup gate, both sides of the ratio come from the same run, so the
//! flatness gate is largely machine-independent; it fails when the ratio
//! exceeds the committed one by more than [`FLATNESS_TOLERANCE`]×.
//!
//! Schema v4 adds the kernel-counter columns from the engine's
//! self-telemetry ([`mcloud_core::KernelStats`]): calendar-queue pops,
//! cancellations, and peak pending events per simulation. All three are
//! deterministic — pure functions of the simulated event sequence — so the
//! gate compares them exactly, the same way it treats `events`: any drift
//! is a semantic change to the kernel, never noise.
//!
//! Schema v5 adds the service-scale row: a seeded streaming service
//! campaign (diurnal/seasonal/flash-modulated class mix through the
//! bounded-queue admission path) whose offered/admitted/rejected/deflected
//! counters are deterministic and exactly gated, plus a
//! `service_requests_per_sec` throughput column gated tolerantly like the
//! other wall-clock numbers.
//!
//! Schema v6 adds the incremental-sweep rows: dense processor axes walked
//! once from scratch and once through the checkpoint/fork chain
//! ([`mcloud_core::IncrementalChain`]), both single-threaded in the same
//! process. Two regimes are committed: `P = 1..=64` on the 4° mosaic
//! (wide workflow — adjacent points diverge within ~`P` events, so the
//! chain can only ever reuse a short prefix) and `P = 1..=256` on the 1°
//! mosaic (the axis extends past peak parallelism, so most points resume
//! from a terminal checkpoint with zero replay). The chain's resume/reuse
//! counters are deterministic and exactly gated (they pin the
//! witness/cadence semantics); the two points/sec columns are gated
//! tolerantly; and the `speedup` quotient — both sides measured in the
//! *same run*, so machine speed cancels — must stay above
//! [`SWEEP_SPEEDUP_GATE`] on the 1° showcase row (see
//! [`sweep_speedup_floor`]).
//!
//! Schema v7 adds the content-addressed cache row
//! ([`mcloud_cache::ResultCache`]): a processor grid simulated twice
//! through [`mcloud_cache::simulate_batch_cached`] against a *local*
//! cache for exact `cold_misses` / `warm_hits` counters, a four-thread
//! race on one cold key whose `single_flight_computes` must stay exactly
//! 1 (however the threads interleave, single-flight lets one compute
//! through), and a capacity-planner double-run via
//! [`mcloud_service::plan_capacity_with_cache`] whose second pass must
//! replay at least 90% of the candidate grid from lookups
//! ([`PLAN_REPLAY_GATE_PCT`] — machine-local, both numbers from the
//! current run). The counters are deterministic and exactly gated; the
//! `warm_hits_per_sec` throughput column is gated tolerantly like every
//! other wall-clock number.
//!
//! The JSON is hand-emitted with fixed key order so a re-run on identical
//! hardware diffs minimally, and parsed back with a small field scanner —
//! no external dependencies.

use std::fmt::Write as _;
use std::time::Instant;

use mcloud_core::{
    simulate, simulate_batch, simulate_batch_on, simulate_with_scratch, BatchScratch, DataMode,
    ExecConfig, IncrementalChain, Provisioning, SimScratch, SweepAxis,
};
use mcloud_dag::Workflow;
use mcloud_montage::{generate, MosaicConfig};
use mcloud_simkit::{configured_lanes, WorkerPool};

use crate::alloc;

/// Mosaic sizes measured by the baseline: the paper's three canonical
/// workflows plus the scale-up presets from the follow-on literature
/// (Juve et al. / Berriman et al. run Montage at far larger scales).
pub const BASELINE_DEGREES: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// One workload measured by the baseline: a mosaic size and a data mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Mosaic side length in degrees.
    pub degrees: f64,
    /// Data-management mode.
    pub mode: DataMode,
}

impl Workload {
    /// Stable workload identifier, e.g. `4deg/regular`.
    pub fn name(&self) -> String {
        format!("{}deg/{}", self.degrees, self.mode.label())
    }

    /// The workflow this workload simulates.
    pub fn workflow(&self) -> Workflow {
        generate(&MosaicConfig::new(self.degrees))
    }

    /// The execution plan: the paper's on-demand provisioning (ample
    /// processors), which exercises the engine's peak event rate.
    pub fn config(&self) -> ExecConfig {
        ExecConfig::on_demand(self.mode)
    }
}

/// Every workload the baseline measures, in a fixed order.
pub fn workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    for degrees in BASELINE_DEGREES {
        for mode in DataMode::ALL {
            out.push(Workload { degrees, mode });
        }
    }
    out
}

/// Measured numbers for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMeasurement {
    /// Workload identifier (`<degrees>deg/<mode>`).
    pub name: String,
    /// Task count of the simulated workflow.
    pub tasks: u64,
    /// Engine events processed by one simulation (deterministic).
    pub events: u64,
    /// Heap allocations one simulation performs (deterministic).
    pub allocs_per_sim: u64,
    /// Bytes those allocations request (deterministic).
    pub alloc_bytes_per_sim: u64,
    /// Peak live heap the simulation holds above its starting level
    /// (deterministic).
    pub peak_live_bytes: u64,
    /// Simulations per second (environment-dependent).
    pub sims_per_sec: f64,
    /// Engine events per second (environment-dependent).
    pub events_per_sec: f64,
    /// Heap allocations one simulation performs on a warm, reused
    /// [`SimScratch`] — the steady-state cost a batch lane pays per
    /// simulation (deterministic).
    pub batch_allocs_per_sim: u64,
    /// Simulations per second through [`simulate_batch`] over the
    /// persistent worker pool (environment-dependent).
    pub batch_sims_per_sec: f64,
    /// Calendar-queue pops one simulation performs (deterministic; from
    /// the kernel self-telemetry).
    pub queue_pops: u64,
    /// Calendar-queue cancellations one simulation performs
    /// (deterministic).
    pub queue_cancellations: u64,
    /// Peak simultaneously pending events in the calendar queue
    /// (deterministic).
    pub queue_peak_pending: u64,
}

impl WorkloadMeasurement {
    /// Allocations divided by tasks — the headline hot-path health number.
    pub fn allocs_per_task(&self) -> f64 {
        self.allocs_per_sim as f64 / self.tasks.max(1) as f64
    }
}

/// One informational worker-count scaling row: `1deg/regular` batch
/// throughput on a dedicated pool of `workers` lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Lane count of the pool the row was measured on.
    pub workers: usize,
    /// Batch simulations per second at that lane count.
    pub batch_sims_per_sec: f64,
}

/// One throughput-flatness row (schema v3): how much slower the engine
/// processes events at 16° than at 1° in one data mode. A perfectly
/// scale-oblivious kernel holds `ratio` ~1; a kernel that falls out of
/// cache at 49k tasks shows a large ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatnessRow {
    /// Data-mode label (`regular` / `cleanup` / `remote-io`).
    pub mode: String,
    /// Events/sec of the `1deg` workload in this mode.
    pub small_events_per_sec: f64,
    /// Events/sec of the `16deg` workload in this mode.
    pub large_events_per_sec: f64,
    /// `small_events_per_sec / large_events_per_sec` (lower is flatter).
    pub ratio: f64,
}

/// One service-scale row (schema v5): a seeded streaming service campaign
/// replayed through [`mcloud_service::simulate_service_stream`]. The
/// request counters are event-derived and deterministic — the gate
/// compares them exactly — while `requests_per_sec` is wall-clock and
/// gated tolerantly.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceScaleRow {
    /// Stable scenario identifier.
    pub scenario: String,
    /// Requests the arrival stream offered.
    pub offered: u64,
    /// Requests admitted and served (local or cloud).
    pub admitted: u64,
    /// Requests turned away by the bounded-queue admission control.
    pub rejected: u64,
    /// Requests deflected to per-request cloud resources.
    pub deflected: u64,
    /// Offered requests simulated per wall-clock second
    /// (environment-dependent).
    pub requests_per_sec: f64,
}

/// The service-scale campaign: a quarter of diurnally/seasonally
/// modulated mixed traffic with one flash crowd, against a 4-slot local
/// cluster with a bounded queue that rejects overflow. Sized (~25k
/// requests) to finish in well under a second in release builds while
/// still exercising every admission path.
fn service_scale_scenario() -> (
    &'static str,
    Vec<mcloud_service::RequestClass>,
    mcloud_service::RateProfile,
    f64,
    u64,
    mcloud_service::ServiceConfig,
) {
    use mcloud_service::{AdmissionPolicy, FlashCrowd, RateProfile, RequestClass, ServiceConfig};
    let classes = vec![
        RequestClass {
            rate_per_hour: 8.0,
            degrees: 1.0,
            priority: 2,
        },
        RequestClass {
            rate_per_hour: 3.0,
            degrees: 2.0,
            priority: 1,
        },
        RequestClass {
            rate_per_hour: 0.5,
            degrees: 4.0,
            priority: 0,
        },
    ];
    let profile = RateProfile {
        base_rate_per_hour: 1.0, // per-class rates substitute for this
        diurnal_amplitude: 0.4,
        seasonal_amplitude: 0.2,
        flash_crowds: vec![FlashCrowd {
            start_hour: 400.0,
            duration_hours: 24.0,
            multiplier: 5.0,
        }],
    };
    // A cluster sized right at the mean offered load (no cloud bursting,
    // or the burst path would drain the queue before it ever reached the
    // bound): the diurnal peak and the flash crowd overflow the 24-deep
    // queue, so the row pins real rejected counts.
    let cfg = ServiceConfig {
        local_slots: 12,
        burst_threshold: None,
        queue_bound: Some(24),
        admission: AdmissionPolicy::Reject,
        ..ServiceConfig::default_burst()
    };
    ("quarter-mixed-reject", classes, profile, 2190.0, 2008, cfg)
}

/// Measures the service-scale row: one counted streaming campaign for the
/// deterministic request counters, then timed replays (best-of) for the
/// throughput column.
pub fn measure_service_scale(budget_ms: u64) -> Vec<ServiceScaleRow> {
    use mcloud_service::{class_stream, simulate_service_stream};
    use mcloud_simkit::NullSink;

    let (scenario, classes, profile, horizon, seed, cfg) = service_scale_scenario();
    let run = || {
        simulate_service_stream(
            class_stream(&classes, &profile, horizon, seed),
            &cfg,
            &mut NullSink,
            |_| {},
        )
    };
    let report = run();

    let budget_s = budget_ms as f64 / 1e3;
    let mut best_s = f64::INFINITY;
    let mut runs = 0u32;
    let all = Instant::now();
    loop {
        let start = Instant::now();
        std::hint::black_box(run());
        best_s = best_s.min(start.elapsed().as_secs_f64());
        runs += 1;
        if (runs >= MIN_TIMED_RUNS && all.elapsed().as_secs_f64() >= budget_s) || runs >= 10_000 {
            break;
        }
    }

    vec![ServiceScaleRow {
        scenario: scenario.to_string(),
        offered: report.offered() as u64,
        admitted: report.requests() as u64,
        rejected: report.rejected_requests() as u64,
        deflected: report.deflected_requests() as u64,
        requests_per_sec: report.offered() as f64 / best_s.max(1e-9),
    }]
}

/// One incremental-sweep row (schema v6): a whole sweep axis walked once
/// from scratch and once through the checkpoint/fork chain. The resume
/// and event-reuse counters are pure functions of the engine and chain
/// semantics (single chain, fixed cadence), so the gate compares them
/// exactly; the points/sec columns are wall-clock and gated tolerantly;
/// and the same-run `speedup` quotient must hold the row's
/// [`sweep_speedup_floor`], when it has one.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Stable axis identifier, e.g. `processors/4deg-regular`.
    pub axis: String,
    /// Sweep points on the axis.
    pub points: u64,
    /// Points that resumed from a checkpoint (deterministic).
    pub resumed: u64,
    /// Events skipped by restores (deterministic).
    pub reused_events: u64,
    /// Events a from-scratch walk processes in total (deterministic).
    pub total_events: u64,
    /// Points/sec of the sequential from-scratch walk
    /// (environment-dependent).
    pub scratch_points_per_sec: f64,
    /// Points/sec of the incremental walk (environment-dependent).
    pub incremental_points_per_sec: f64,
    /// `incremental / scratch` points-per-sec quotient — both sides from
    /// the same run, so machine speed cancels out.
    pub speedup: f64,
}

/// Minimum timed whole-axis walks per side of the sweep row.
const MIN_SWEEP_RUNS: u32 = 3;

/// The sweep-scale scenario: the paper's largest canonical mosaic on a
/// dense processor axis. The 4° mosaic has ~677 tasks ready at `t = 0`,
/// so adjacent points genuinely diverge within the first ~P events and
/// the chain can only reuse a short prefix — this row locks the
/// wide-workflow regime where incremental must simply never lose.
const SWEEP_DEGREES: f64 = 4.0;

/// Top of the dense `1..=N` processor axis the 4° sweep row walks.
const SWEEP_MAX_PROCS: u32 = 64;

/// The sublinearity showcase: a dense axis extending well past the 1°
/// mosaic's peak parallelism (~50 concurrent tasks). Beyond that width
/// the pool never exhausts, the divergence witness never fires, and each
/// point resumes from the previous point's terminal checkpoint replaying
/// zero events — the whole-axis walk is sublinear in points.
const SWEEP_SUBLINEAR_DEGREES: f64 = 1.0;

/// Top of the dense `1..=N` processor axis the 1° showcase row walks.
const SWEEP_SUBLINEAR_MAX_PROCS: u32 = 256;

/// Measures one sweep row on a dense `1..=max_procs` processor axis of
/// the `degrees` mosaic: one counted chain walk for the deterministic
/// counters, then timed whole-axis walks (best-of) for both sides.
/// Everything runs inline on this thread — lane settings do not move
/// these numbers.
pub fn measure_sweep_row(degrees: f64, max_procs: u32, budget_ms: u64) -> SweepRow {
    let wf = generate(&MosaicConfig::new(degrees));
    let base = ExecConfig::paper_default();
    let cfgs: Vec<ExecConfig> = (1..=max_procs)
        .map(|p| ExecConfig {
            provisioning: Provisioning::Fixed { processors: p },
            ..base.clone()
        })
        .collect();

    let chain_walk = || {
        let mut chain = IncrementalChain::new(SweepAxis::Processors);
        for (i, cfg) in cfgs.iter().enumerate() {
            std::hint::black_box(chain.run_point(&wf, cfg, cfgs.get(i + 1)));
        }
        chain.stats()
    };
    // Counted walk (doubles as warm-up for the timed ones).
    let stats = chain_walk();

    let budget_s = budget_ms as f64 / 1e3;
    let time_side = |walk: &mut dyn FnMut()| {
        let mut best_s = f64::INFINITY;
        let mut runs = 0u32;
        let all = Instant::now();
        loop {
            let start = Instant::now();
            walk();
            best_s = best_s.min(start.elapsed().as_secs_f64());
            runs += 1;
            if (runs >= MIN_SWEEP_RUNS && all.elapsed().as_secs_f64() >= budget_s) || runs >= 10_000
            {
                break;
            }
        }
        cfgs.len() as f64 / best_s.max(1e-9)
    };

    let mut scratch = SimScratch::new();
    std::hint::black_box(simulate_with_scratch(&wf, &cfgs[0], &mut scratch)); // warm
    let scratch_pps = time_side(&mut || {
        for cfg in &cfgs {
            std::hint::black_box(simulate_with_scratch(&wf, cfg, &mut scratch));
        }
    });
    let incremental_pps = time_side(&mut || {
        std::hint::black_box(chain_walk());
    });

    SweepRow {
        axis: format!("processors/{degrees}deg-regular"),
        points: stats.points,
        resumed: stats.resumed,
        reused_events: stats.reused_events,
        total_events: stats.total_events,
        scratch_points_per_sec: scratch_pps,
        incremental_points_per_sec: incremental_pps,
        speedup: incremental_pps / scratch_pps.max(1e-9),
    }
}

/// Measures the committed sweep-scale rows: dense `1..=64` processors on
/// the 4° mosaic (wide-workflow regime, short reusable prefixes) and
/// dense `1..=256` on the 1° mosaic (the sublinear regime, where points
/// past peak parallelism resume with zero replay and must clear
/// [`SWEEP_SPEEDUP_GATE`]).
pub fn measure_sweep_scale(budget_ms: u64) -> Vec<SweepRow> {
    vec![
        measure_sweep_row(SWEEP_DEGREES, SWEEP_MAX_PROCS, budget_ms),
        measure_sweep_row(
            SWEEP_SUBLINEAR_DEGREES,
            SWEEP_SUBLINEAR_MAX_PROCS,
            budget_ms,
        ),
    ]
}

/// One content-addressed cache row (schema v7): the result cache probed
/// exactly the way the hot consumers use it. The hit/miss/single-flight
/// counters are pure functions of the cache and digest semantics, so the
/// gate compares them exactly; `warm_hits_per_sec` is wall-clock and
/// gated tolerantly; and the planner-replay quotient is a same-run,
/// machine-local hard floor (see [`PLAN_REPLAY_GATE_PCT`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheRow {
    /// Stable scenario identifier.
    pub scenario: String,
    /// Misses the cold batch pass records — one per distinct grid point
    /// (deterministic).
    pub cold_misses: u64,
    /// Memory hits the warm batch pass records — the whole grid
    /// (deterministic).
    pub warm_hits: u64,
    /// Simulations that actually ran when four threads raced one cold
    /// key through single-flight — exactly 1, however the threads
    /// interleave (deterministic).
    pub single_flight_computes: u64,
    /// Candidates in the capacity-planner grid (deterministic).
    pub plan_candidates: u64,
    /// Candidates the planner's second run answered from cache
    /// (deterministic; must cover ≥ [`PLAN_REPLAY_GATE_PCT`]% of the
    /// grid).
    pub plan_warm_hits: u64,
    /// Warm grid probes served per wall-clock second
    /// (environment-dependent).
    pub warm_hits_per_sec: f64,
}

/// Top of the dense `1..=N` processor grid the cache row probes.
const CACHE_GRID_PROCS: u32 = 16;

/// Measures the cache row against *local* [`ResultCache`]s (never the
/// process-wide one, so the counters are exact and isolated): a cold and
/// a warm batch pass over a dense 1° processor grid, a four-thread
/// single-flight race on one cold key, a capacity-planner double-run,
/// then timed whole-grid warm passes (best-of) for the throughput column.
pub fn measure_cache(budget_ms: u64) -> Vec<CacheRow> {
    use mcloud_cache::{simulate_batch_cached, simulate_cached, ResultCache, DEFAULT_BUDGET_BYTES};
    use mcloud_service::{plan_capacity_with_cache, PlanSpec};

    let wf = generate(&MosaicConfig::new(1.0));
    let base = ExecConfig::paper_default();
    let cfgs: Vec<ExecConfig> = (1..=CACHE_GRID_PROCS)
        .map(|p| ExecConfig {
            provisioning: Provisioning::Fixed { processors: p },
            ..base.clone()
        })
        .collect();

    // Cold then warm batch pass: the miss and hit counters are exact.
    let cache = ResultCache::new(DEFAULT_BUDGET_BYTES, None);
    let mut scratch = BatchScratch::new();
    std::hint::black_box(simulate_batch_cached(&wf, &cfgs, &mut scratch, &cache));
    let cold_misses = cache.counters().misses;
    std::hint::black_box(simulate_batch_cached(&wf, &cfgs, &mut scratch, &cache));
    let warm_hits = cache.counters().hits_mem;

    // Single-flight: four threads race the same cold key on a fresh
    // cache. Whatever the interleaving — all coalesced behind one
    // compute, or serialized into hits — exactly one simulation runs.
    let race = ResultCache::new(DEFAULT_BUDGET_BYTES, None);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                std::hint::black_box(simulate_cached(&wf, &cfgs[0], &race));
            });
        }
    });
    let single_flight_computes = race.counters().computes;

    // Planner double-run: the second pass over an unchanged spec must
    // replay the candidate grid from lookups.
    let spec = PlanSpec::new(7.0, 3.0, 72.0);
    let candidates = spec.default_candidates();
    let plan_cache = ResultCache::new(DEFAULT_BUDGET_BYTES, None);
    let _ = plan_capacity_with_cache(&spec, candidates.clone(), &plan_cache)
        .expect("the committed plan spec validates");
    let before = plan_cache.counters().hits_mem;
    let _ = plan_capacity_with_cache(&spec, candidates.clone(), &plan_cache)
        .expect("the committed plan spec validates");
    let plan_warm_hits = plan_cache.counters().hits_mem - before;

    // Warm-probe throughput: whole fully-warm grid passes, best-of.
    let budget_s = budget_ms as f64 / 1e3;
    let mut best_s = f64::INFINITY;
    let mut runs = 0u32;
    let all = Instant::now();
    loop {
        let start = Instant::now();
        std::hint::black_box(simulate_batch_cached(&wf, &cfgs, &mut scratch, &cache));
        best_s = best_s.min(start.elapsed().as_secs_f64());
        runs += 1;
        if (runs >= MIN_TIMED_RUNS && all.elapsed().as_secs_f64() >= budget_s) || runs >= 10_000 {
            break;
        }
    }

    vec![CacheRow {
        scenario: "1deg-procs-grid+plan-replay".to_string(),
        cold_misses,
        warm_hits,
        single_flight_computes,
        plan_candidates: candidates.len() as u64,
        plan_warm_hits,
        warm_hits_per_sec: cfgs.len() as f64 / best_s.max(1e-9),
    }]
}

/// Derives the per-mode flatness rows from a set of workload measurements
/// (the `1deg` and `16deg` rows of each mode must be present).
pub fn flatness_rows(workloads: &[WorkloadMeasurement]) -> Vec<FlatnessRow> {
    DataMode::ALL
        .iter()
        .filter_map(|mode| {
            let find = |deg: &str| {
                let name = format!("{deg}deg/{}", mode.label());
                workloads.iter().find(|w| w.name == name)
            };
            let (small, large) = (find("1")?, find("16")?);
            Some(FlatnessRow {
                mode: mode.label().to_string(),
                small_events_per_sec: small.events_per_sec,
                large_events_per_sec: large.events_per_sec,
                ratio: small.events_per_sec / large.events_per_sec.max(1e-9),
            })
        })
        .collect()
}

/// A full baseline: one measurement per workload plus the measuring
/// machine's parallelism and the worker-count scaling rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Worker lanes the batch columns were measured with
    /// (`MCLOUD_WORKERS` or all cores).
    pub workers: usize,
    /// Cores the measuring machine reported (`available_parallelism`).
    pub host_parallelism: usize,
    /// Per-workload measurements, in [`workloads`] order.
    pub workloads: Vec<WorkloadMeasurement>,
    /// Informational `1deg/regular` scaling rows (not gated: throughput
    /// at a lane count the host can't supply is meaningless).
    pub scaling: Vec<ScalingRow>,
    /// Per-mode 1°/16° events/sec ratios, gated by [`FLATNESS_TOLERANCE`].
    pub flatness: Vec<FlatnessRow>,
    /// Service-scale campaign rows (schema v5): exact request counters
    /// plus tolerant requests/sec throughput.
    pub service: Vec<ServiceScaleRow>,
    /// Incremental-sweep rows (schema v6): exact resume/reuse counters
    /// plus tolerant points/sec and the hard same-run speedup floor.
    pub sweeps: Vec<SweepRow>,
    /// Content-addressed cache rows (schema v7): exact hit/miss/
    /// single-flight counters, the machine-local planner-replay floor,
    /// plus tolerant warm-probe throughput.
    pub cache: Vec<CacheRow>,
}

/// Simulations per [`simulate_batch`] call in the batch timing loop —
/// enough to keep every lane busy through a few chunks without making the
/// 16° workloads take minutes.
const BATCH_SIMS: usize = 8;

/// Minimum whole-batch timing samples per workload, even past the budget.
///
/// Measurement rule for the batch column: the slow (8°/16°) workloads fit
/// at most one whole batch inside the budget, so the sample floor — not
/// the budget — decides how many observations the best-of sees. At 3
/// samples the committed 8°/cleanup row once recorded batch throughput
/// 33% *below* the single-sim rate on a 1-lane pool (132.69 vs 198.85
/// sims/s), which is physically impossible at steady state: the single-sim
/// column got 12+ samples to find the fast envelope while the batch
/// column got 3, at least one of them polluted by cold per-lane scratch
/// growth. Two warm-up batches (the first grows every lane's scratch, the
/// second settles the allocator) plus a floor of 6 timed samples pins the
/// best-of near the true envelope for both columns.
const MIN_BATCH_RUNS: u32 = 6;

/// Minimum single-simulation timing samples per workload, even past the
/// budget. The 16° workloads fit only ~4 runs in the default budget, which
/// makes their best-of swing well past the gate's tolerance between a
/// quiet and a loaded machine; a floor of samples pins it near the true
/// fast envelope on both.
const MIN_TIMED_RUNS: u32 = 12;

/// Measures one workload: a warm-up run, one counted run for the
/// deterministic numbers, then as many timed runs as fit `budget_ms`.
pub fn measure_workload(w: &Workload, budget_ms: u64) -> WorkloadMeasurement {
    let wf = w.workflow();
    let cfg = w.config();
    // Warm-up: touches every code path and lets the allocator's internal
    // arenas settle so the counted run sees steady-state behaviour.
    let warm = simulate(&wf, &cfg);
    let events = warm.events_processed;
    let (_, delta) = alloc::measure(|| std::hint::black_box(simulate(&wf, &cfg)));

    // Warm-scratch allocations: one simulation on buffers a previous run
    // already grew. Measured inline on this thread (the pool is not
    // involved), so the process-wide counters are exact.
    let mut scratch = SimScratch::new();
    std::hint::black_box(simulate_with_scratch(&wf, &cfg, &mut scratch));
    let (_, warm_delta) =
        alloc::measure(|| std::hint::black_box(simulate_with_scratch(&wf, &cfg, &mut scratch)));

    // Throughput: time each simulation individually until the budget is
    // spent (at least one) and keep the *fastest*. The best-observed rate
    // measures what the machine can do; unlike a whole-budget average it is
    // insensitive to scheduler noise and frequency dips, which keeps
    // same-machine re-measurements inside the gate's tolerance band. Timer
    // overhead is negligible: even the smallest workload runs for ~100 us.
    let budget_s = budget_ms as f64 / 1e3;
    let mut best_per_sim_s = f64::INFINITY;
    let mut runs = 0u32;
    let all = Instant::now();
    loop {
        let start = Instant::now();
        std::hint::black_box(simulate(&wf, &cfg));
        best_per_sim_s = best_per_sim_s.min(start.elapsed().as_secs_f64());
        runs += 1;
        if (runs >= MIN_TIMED_RUNS && all.elapsed().as_secs_f64() >= budget_s) || runs >= 10_000 {
            break;
        }
    }
    let per_sim_s = best_per_sim_s.max(1e-9);

    // Batch throughput: time whole [`simulate_batch`] calls over a list of
    // identical configs, best-of within the same budget. Uses the global
    // pool (all lanes inline when `MCLOUD_WORKERS=1` or one core).
    let cfgs = vec![cfg.clone(); BATCH_SIMS];
    let mut batch_scratch = BatchScratch::new();
    // Two warm-up batches before the timing window — see [`MIN_BATCH_RUNS`]
    // for the measurement rule.
    std::hint::black_box(simulate_batch(&wf, &cfgs, &mut batch_scratch));
    std::hint::black_box(simulate_batch(&wf, &cfgs, &mut batch_scratch));
    let mut best_batch_s = f64::INFINITY;
    let mut batch_runs = 0u32;
    let all = Instant::now();
    loop {
        let start = Instant::now();
        std::hint::black_box(simulate_batch(&wf, &cfgs, &mut batch_scratch));
        best_batch_s = best_batch_s.min(start.elapsed().as_secs_f64());
        batch_runs += 1;
        // Whole-batch timings are coarse (one 16deg batch outlasts the
        // budget), so insist on a few samples before best-of means much.
        if (batch_runs >= MIN_BATCH_RUNS && all.elapsed().as_secs_f64() >= budget_s)
            || batch_runs >= 10_000
        {
            break;
        }
    }

    WorkloadMeasurement {
        name: w.name(),
        tasks: wf.num_tasks() as u64,
        events,
        allocs_per_sim: delta.allocs,
        alloc_bytes_per_sim: delta.alloc_bytes,
        peak_live_bytes: delta.peak_above_start,
        sims_per_sec: 1.0 / per_sim_s,
        events_per_sec: events as f64 / per_sim_s,
        batch_allocs_per_sim: warm_delta.allocs,
        batch_sims_per_sec: BATCH_SIMS as f64 / best_batch_s.max(1e-9),
        queue_pops: warm.kernel.queue.popped,
        queue_cancellations: warm.kernel.queue.cancelled,
        queue_peak_pending: warm.kernel.queue.peak_pending,
    }
}

/// Measures the informational `1deg/regular` worker-count scaling rows on
/// dedicated pools of 1, 2 and 4 lanes.
pub fn measure_scaling(budget_ms: u64) -> Vec<ScalingRow> {
    let w = Workload {
        degrees: 1.0,
        mode: DataMode::Regular,
    };
    let wf = w.workflow();
    let cfgs = vec![w.config(); BATCH_SIMS];
    let budget_s = budget_ms as f64 / 1e3;
    let mut rows = Vec::new();
    for lanes in [1usize, 2, 4] {
        let pool = WorkerPool::new(lanes);
        let mut scratch = BatchScratch::new();
        std::hint::black_box(simulate_batch_on(&pool, &wf, &cfgs, &mut scratch));
        let mut best_s = f64::INFINITY;
        let mut runs = 0u32;
        let all = Instant::now();
        loop {
            let start = Instant::now();
            std::hint::black_box(simulate_batch_on(&pool, &wf, &cfgs, &mut scratch));
            best_s = best_s.min(start.elapsed().as_secs_f64());
            runs += 1;
            if (runs >= MIN_BATCH_RUNS && all.elapsed().as_secs_f64() >= budget_s) || runs >= 10_000
            {
                break;
            }
        }
        rows.push(ScalingRow {
            workers: lanes,
            batch_sims_per_sec: BATCH_SIMS as f64 / best_s.max(1e-9),
        });
    }
    rows
}

/// Cores the current machine reports; 1 when the query fails.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Measures every workload. `budget_ms` is the per-workload timing budget.
pub fn measure_all(budget_ms: u64, mut progress: impl FnMut(&WorkloadMeasurement)) -> Baseline {
    let mut out = Vec::new();
    for w in workloads() {
        let m = measure_workload(&w, budget_ms);
        progress(&m);
        out.push(m);
    }
    let flatness = flatness_rows(&out);
    Baseline {
        workers: configured_lanes(),
        host_parallelism: host_parallelism(),
        workloads: out,
        scaling: measure_scaling(budget_ms),
        flatness,
        service: measure_service_scale(budget_ms),
        sweeps: measure_sweep_scale(budget_ms),
        cache: measure_cache(budget_ms),
    }
}

// --- JSON ------------------------------------------------------------------

/// Schema tag written into (and required from) the baseline file.
pub const SCHEMA: &str = "mcloud-bench-baseline/v7";

/// Serializes a baseline as pretty-printed JSON with a fixed key order.
pub fn to_json(b: &Baseline) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(s, "  \"workers\": {},", b.workers);
    let _ = writeln!(s, "  \"host_parallelism\": {},", b.host_parallelism);
    s.push_str("  \"workloads\": [\n");
    for (i, w) in b.workloads.iter().enumerate() {
        let comma = if i + 1 < b.workloads.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"tasks\": {}, \"events\": {}, \
             \"allocs_per_sim\": {}, \"alloc_bytes_per_sim\": {}, \
             \"peak_live_bytes\": {}, \"allocs_per_task\": {:.2}, \
             \"sims_per_sec\": {:.2}, \"events_per_sec\": {:.0}, \
             \"batch_allocs_per_sim\": {}, \"batch_sims_per_sec\": {:.2}, \
             \"queue_pops\": {}, \"queue_cancellations\": {}, \
             \"queue_peak_pending\": {}}}{comma}",
            w.name,
            w.tasks,
            w.events,
            w.allocs_per_sim,
            w.alloc_bytes_per_sim,
            w.peak_live_bytes,
            w.allocs_per_task(),
            w.sims_per_sec,
            w.events_per_sec,
            w.batch_allocs_per_sim,
            w.batch_sims_per_sec,
            w.queue_pops,
            w.queue_cancellations,
            w.queue_peak_pending,
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"scaling\": [\n");
    for (i, r) in b.scaling.iter().enumerate() {
        let comma = if i + 1 < b.scaling.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"workers\": {}, \"batch_sims_per_sec\": {:.2}}}{comma}",
            r.workers, r.batch_sims_per_sec,
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"flatness\": [\n");
    for (i, f) in b.flatness.iter().enumerate() {
        let comma = if i + 1 < b.flatness.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"mode\": \"{}\", \"small_events_per_sec\": {:.0}, \
             \"large_events_per_sec\": {:.0}, \"ratio\": {:.3}}}{comma}",
            f.mode, f.small_events_per_sec, f.large_events_per_sec, f.ratio,
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"service\": [\n");
    for (i, r) in b.service.iter().enumerate() {
        let comma = if i + 1 < b.service.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"scenario\": \"{}\", \"offered\": {}, \"admitted\": {}, \
             \"rejected\": {}, \"deflected\": {}, \
             \"service_requests_per_sec\": {:.0}}}{comma}",
            r.scenario, r.offered, r.admitted, r.rejected, r.deflected, r.requests_per_sec,
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"sweeps\": [\n");
    for (i, r) in b.sweeps.iter().enumerate() {
        let comma = if i + 1 < b.sweeps.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"axis\": \"{}\", \"points\": {}, \"resumed\": {}, \
             \"reused_events\": {}, \"total_events\": {}, \
             \"scratch_points_per_sec\": {:.2}, \
             \"incremental_points_per_sec\": {:.2}, \"speedup\": {:.2}}}{comma}",
            r.axis,
            r.points,
            r.resumed,
            r.reused_events,
            r.total_events,
            r.scratch_points_per_sec,
            r.incremental_points_per_sec,
            r.speedup,
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"cache\": [\n");
    for (i, r) in b.cache.iter().enumerate() {
        let comma = if i + 1 < b.cache.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"scenario\": \"{}\", \"cold_misses\": {}, \"warm_hits\": {}, \
             \"single_flight_computes\": {}, \"plan_candidates\": {}, \
             \"plan_warm_hits\": {}, \"warm_hits_per_sec\": {:.0}}}{comma}",
            r.scenario,
            r.cold_misses,
            r.warm_hits,
            r.single_flight_computes,
            r.plan_candidates,
            r.plan_warm_hits,
            r.warm_hits_per_sec,
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pulls `"key": <number>` out of a JSON object line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls `"key": "<string>"` out of a JSON object line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Parses a baseline file produced by [`to_json`].
///
/// # Errors
/// Returns a message when the schema tag is missing/mismatched or a
/// workload line lacks a required field.
pub fn from_json(text: &str) -> Result<Baseline, String> {
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("baseline file does not carry schema {SCHEMA:?}"));
    }
    let mut workers = None;
    let mut host_parallelism = None;
    let mut workloads = Vec::new();
    let mut scaling = Vec::new();
    let mut flatness = Vec::new();
    let mut service = Vec::new();
    let mut sweeps = Vec::new();
    let mut cache = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        // The cache, sweep and service rows are classified first: their
        // key sets must never be shadowed by the broader matchers below
        // (a cache row carries "scenario" too, so its unique
        // "cold_misses" key is checked before the service matcher).
        if line.starts_with('{') && line.contains("\"cold_misses\"") {
            let get = |key: &str| {
                num_field(line, key).ok_or_else(|| format!("missing numeric field {key:?}: {line}"))
            };
            cache.push(CacheRow {
                scenario: str_field(line, "scenario")
                    .ok_or_else(|| format!("missing scenario: {line}"))?,
                cold_misses: get("cold_misses")? as u64,
                warm_hits: get("warm_hits")? as u64,
                single_flight_computes: get("single_flight_computes")? as u64,
                plan_candidates: get("plan_candidates")? as u64,
                plan_warm_hits: get("plan_warm_hits")? as u64,
                warm_hits_per_sec: get("warm_hits_per_sec")?,
            });
        } else if line.starts_with('{') && line.contains("\"axis\"") {
            let get = |key: &str| {
                num_field(line, key).ok_or_else(|| format!("missing numeric field {key:?}: {line}"))
            };
            sweeps.push(SweepRow {
                axis: str_field(line, "axis").ok_or_else(|| format!("missing axis: {line}"))?,
                points: get("points")? as u64,
                resumed: get("resumed")? as u64,
                reused_events: get("reused_events")? as u64,
                total_events: get("total_events")? as u64,
                scratch_points_per_sec: get("scratch_points_per_sec")?,
                incremental_points_per_sec: get("incremental_points_per_sec")?,
                speedup: get("speedup")?,
            });
        } else if line.starts_with('{') && line.contains("\"scenario\"") {
            let get = |key: &str| {
                num_field(line, key).ok_or_else(|| format!("missing numeric field {key:?}: {line}"))
            };
            service.push(ServiceScaleRow {
                scenario: str_field(line, "scenario")
                    .ok_or_else(|| format!("missing scenario: {line}"))?,
                offered: get("offered")? as u64,
                admitted: get("admitted")? as u64,
                rejected: get("rejected")? as u64,
                deflected: get("deflected")? as u64,
                requests_per_sec: get("service_requests_per_sec")?,
            });
        } else if line.starts_with('{') && line.contains("\"name\"") {
            let get = |key: &str| {
                num_field(line, key).ok_or_else(|| format!("missing numeric field {key:?}: {line}"))
            };
            workloads.push(WorkloadMeasurement {
                name: str_field(line, "name").ok_or_else(|| format!("missing name: {line}"))?,
                tasks: get("tasks")? as u64,
                events: get("events")? as u64,
                allocs_per_sim: get("allocs_per_sim")? as u64,
                alloc_bytes_per_sim: get("alloc_bytes_per_sim")? as u64,
                peak_live_bytes: get("peak_live_bytes")? as u64,
                sims_per_sec: get("sims_per_sec")?,
                events_per_sec: get("events_per_sec")?,
                batch_allocs_per_sim: get("batch_allocs_per_sim")? as u64,
                batch_sims_per_sec: get("batch_sims_per_sec")?,
                queue_pops: get("queue_pops")? as u64,
                queue_cancellations: get("queue_cancellations")? as u64,
                queue_peak_pending: get("queue_peak_pending")? as u64,
            });
        } else if line.starts_with('{') && line.contains("\"workers\"") {
            // A scaling row: {"workers": N, "batch_sims_per_sec": X}.
            let get = |key: &str| {
                num_field(line, key).ok_or_else(|| format!("missing numeric field {key:?}: {line}"))
            };
            scaling.push(ScalingRow {
                workers: get("workers")? as usize,
                batch_sims_per_sec: get("batch_sims_per_sec")?,
            });
        } else if line.starts_with('{') && line.contains("\"mode\"") {
            // A flatness row:
            // {"mode": "...", "small_events_per_sec": A,
            //  "large_events_per_sec": B, "ratio": R}.
            let get = |key: &str| {
                num_field(line, key).ok_or_else(|| format!("missing numeric field {key:?}: {line}"))
            };
            flatness.push(FlatnessRow {
                mode: str_field(line, "mode").ok_or_else(|| format!("missing mode: {line}"))?,
                small_events_per_sec: get("small_events_per_sec")?,
                large_events_per_sec: get("large_events_per_sec")?,
                ratio: get("ratio")?,
            });
        } else if !line.starts_with('{') {
            if workers.is_none() {
                workers = num_field(line, "workers").map(|v| v as usize);
            }
            if host_parallelism.is_none() {
                host_parallelism = num_field(line, "host_parallelism").map(|v| v as usize);
            }
        }
    }
    if workloads.is_empty() {
        return Err("baseline file contains no workloads".into());
    }
    Ok(Baseline {
        workers: workers.ok_or("baseline file lacks a top-level \"workers\" field")?,
        host_parallelism: host_parallelism
            .ok_or("baseline file lacks a top-level \"host_parallelism\" field")?,
        workloads,
        scaling,
        flatness,
        service,
        sweeps,
        cache,
    })
}

// --- the regression gate ---------------------------------------------------

/// Fractional throughput loss tolerated before the gate fails (70%).
/// Empirically a shared host swings ~1.7x between quiet and loaded
/// periods, and over 2.5x when a parallel compile owns the core, even
/// with the sample floors below — a tighter band flakes. The throughput
/// columns are a backstop against order-of-magnitude collapses (the
/// pool serializing, an accidental O(n^2)); the deterministic
/// allocation and event-count columns carry the strict,
/// machine-independent gating (reverting the allocation-free hot path
/// shows up there as 35 -> ~6,800 allocs/sim long before timing moves).
pub const THROUGHPUT_TOLERANCE: f64 = 0.70;

/// Tolerance for the batch sims/sec column — same band, same rationale,
/// plus whole-batch timings yield far fewer samples than the single-sim
/// best-of.
pub const BATCH_THROUGHPUT_TOLERANCE: f64 = 0.70;

/// Hard ceiling on warm-scratch allocations per simulation for the
/// paper-sized (1–4°) workloads. A lane running thousands of simulations
/// must not grow the heap per run.
pub const WARM_ALLOC_BUDGET: u64 = 5;

/// Minimum batch-over-single throughput ratio required on the headline
/// rows when the measuring machine has real parallelism.
pub const BATCH_SPEEDUP_GATE: f64 = 1.5;

/// Workload rows the [`BATCH_SPEEDUP_GATE`] applies to.
pub const SPEEDUP_GATED_ROWS: [&str; 2] = ["1deg/regular", "4deg/regular"];

/// Minimum incremental-over-scratch points/sec quotient required on
/// sweep rows with a hard floor (see [`sweep_speedup_floor`]). Both sides
/// of the quotient come from the same single-threaded measurement run, so
/// absolute machine speed cancels — this is the tentpole's "whole-axis
/// sweeps are sublinear in points" claim, held as a hard floor rather
/// than a tolerance band.
pub const SWEEP_SPEEDUP_GATE: f64 = 2.0;

/// Hard same-run speedup floor for a sweep row, if it carries one.
///
/// The 1° showcase row extends past the mosaic's peak parallelism, where
/// the divergence witness never fires and most points replay zero events
/// — it must clear [`SWEEP_SPEEDUP_GATE`]. The dense 4° row measures the
/// wide-workflow regime: with ~677 tasks ready at `t = 0`, runs at `P`
/// and `P + 1` processors genuinely diverge within ~`P` events, so only
/// a short prefix is ever reusable and the honest quotient sits near 1.1x.
/// That row's quotient is informational; its reuse is still locked
/// exactly through the resume/reuse counters and the tolerant points/sec
/// columns.
pub fn sweep_speedup_floor(axis: &str) -> Option<f64> {
    if axis.starts_with("processors/1deg") {
        Some(SWEEP_SPEEDUP_GATE)
    } else {
        None
    }
}

/// Minimum share of the capacity-planner candidate grid the second run
/// over an unchanged spec must replay from cache, in percent. Both sides
/// of the quotient come from the *current* measurement run, so the check
/// is machine-local — this is the tentpole's "re-planning an unchanged
/// spec replays the grid from lookups" claim, held as a hard floor.
pub const PLAN_REPLAY_GATE_PCT: u64 = 90;

/// Growth factor tolerated on a per-mode 1°/16° events/sec ratio before
/// the flatness gate fails. The ratio is a same-run quotient, so absolute
/// machine speed cancels out of it; what remains is the cache-hierarchy
/// shape, which still varies between hosts. The committed cache-native
/// kernel holds ~1.7–2.0x, while the binary-heap/pointer-chasing kernel it
/// replaced measured ~12x on the original baseline machine and ~3x even on
/// a host with a very large last-level cache — a 2x growth allowance
/// (fail above ~4x) separates the two regimes with margin on both sides.
pub const FLATNESS_TOLERANCE: f64 = 2.0;

/// Compares a fresh measurement against the committed baseline.
///
/// Returns the list of human-readable violations (empty = gate passes):
/// * any *increase* in allocations or allocated bytes per simulation, in
///   warm-scratch allocations, or in events per simulation — these are
///   deterministic, so an increase is a real regression, never noise;
/// * warm-scratch allocations above [`WARM_ALLOC_BUDGET`] on a 1–4°
///   workload (absolute, not relative: the batch lanes must stay
///   allocation-free at steady state);
/// * an events/sec drop of more than [`THROUGHPUT_TOLERANCE`];
/// * a batch sims/sec drop of more than [`BATCH_THROUGHPUT_TOLERANCE`] —
///   only when the lane counts match, since batch throughput at different
///   `MCLOUD_WORKERS` settings is not comparable;
/// * on a machine with both `workers > 1` and `host_parallelism > 1`:
///   batch throughput below [`BATCH_SPEEDUP_GATE`]× single-sim throughput
///   on the [`SPEEDUP_GATED_ROWS`]. Both numbers come from the *current*
///   run, so the check is machine-local and cannot flake on hardware
///   differences from the committed file;
/// * a per-mode 1°/16° events/sec ratio more than [`FLATNESS_TOLERANCE`]×
///   the committed ratio, or a mode whose flatness row disappeared;
/// * any drift in the cache row's hit/miss/single-flight counters
///   (deterministic, exact), a planner replay below
///   [`PLAN_REPLAY_GATE_PCT`]% of the current run's candidate grid
///   (machine-local), or a warm-probe throughput drop of more than
///   [`THROUGHPUT_TOLERANCE`].
///
/// Improvements never fail the gate; re-baseline to lock them in.
pub fn compare(current: &Baseline, committed: &Baseline) -> Vec<String> {
    let mut violations = Vec::new();
    for c in &current.workloads {
        let Some(b) = committed.workloads.iter().find(|w| w.name == c.name) else {
            violations.push(format!(
                "{}: not present in the committed baseline (re-run `repro bench-json --out`)",
                c.name
            ));
            continue;
        };
        if c.allocs_per_sim > b.allocs_per_sim {
            violations.push(format!(
                "{}: allocations per simulation regressed {} -> {}",
                c.name, b.allocs_per_sim, c.allocs_per_sim
            ));
        }
        if c.alloc_bytes_per_sim > b.alloc_bytes_per_sim {
            violations.push(format!(
                "{}: allocated bytes per simulation regressed {} -> {}",
                c.name, b.alloc_bytes_per_sim, c.alloc_bytes_per_sim
            ));
        }
        if c.events != b.events {
            violations.push(format!(
                "{}: events per simulation changed {} -> {} (semantics drift?)",
                c.name, b.events, c.events
            ));
        }
        // The kernel counters are event-derived, so like `events` any
        // change is a semantic drift, not noise.
        for (metric, old, new) in [
            ("calendar-queue pops", b.queue_pops, c.queue_pops),
            (
                "calendar-queue cancellations",
                b.queue_cancellations,
                c.queue_cancellations,
            ),
            (
                "calendar-queue peak pending",
                b.queue_peak_pending,
                c.queue_peak_pending,
            ),
        ] {
            if new != old {
                violations.push(format!(
                    "{}: {metric} per simulation changed {old} -> {new} (semantics drift?)",
                    c.name
                ));
            }
        }
        if c.batch_allocs_per_sim > b.batch_allocs_per_sim {
            violations.push(format!(
                "{}: warm-scratch allocations per simulation regressed {} -> {}",
                c.name, b.batch_allocs_per_sim, c.batch_allocs_per_sim
            ));
        }
        let paper_sized = ["1deg/", "2deg/", "4deg/"]
            .iter()
            .any(|p| c.name.starts_with(p));
        if paper_sized && c.batch_allocs_per_sim > WARM_ALLOC_BUDGET {
            violations.push(format!(
                "{}: warm-scratch allocations per simulation exceed the {} budget ({})",
                c.name, WARM_ALLOC_BUDGET, c.batch_allocs_per_sim
            ));
        }
        let floor = b.events_per_sec * (1.0 - THROUGHPUT_TOLERANCE);
        if c.events_per_sec < floor {
            violations.push(format!(
                "{}: events/sec fell more than {:.0}% below baseline ({:.0} < {:.0})",
                c.name,
                THROUGHPUT_TOLERANCE * 100.0,
                c.events_per_sec,
                floor
            ));
        }
        if current.workers == committed.workers {
            let floor = b.batch_sims_per_sec * (1.0 - BATCH_THROUGHPUT_TOLERANCE);
            if c.batch_sims_per_sec < floor {
                violations.push(format!(
                    "{}: batch sims/sec fell more than {:.0}% below baseline ({:.2} < {:.2})",
                    c.name,
                    BATCH_THROUGHPUT_TOLERANCE * 100.0,
                    c.batch_sims_per_sec,
                    floor
                ));
            }
        }
        if current.workers > 1
            && current.host_parallelism > 1
            && SPEEDUP_GATED_ROWS.contains(&c.name.as_str())
            && c.batch_sims_per_sec < BATCH_SPEEDUP_GATE * c.sims_per_sec
        {
            violations.push(format!(
                "{}: batch throughput {:.2} sims/s is below {:.1}x the single-sim \
                 rate {:.2} sims/s despite {} worker lanes on {} cores",
                c.name,
                c.batch_sims_per_sec,
                BATCH_SPEEDUP_GATE,
                c.sims_per_sec,
                current.workers,
                current.host_parallelism
            ));
        }
    }
    for b in &committed.flatness {
        let Some(c) = current.flatness.iter().find(|f| f.mode == b.mode) else {
            violations.push(format!(
                "flatness/{}: row missing from the current measurement",
                b.mode
            ));
            continue;
        };
        let ceiling = b.ratio * FLATNESS_TOLERANCE;
        if c.ratio > ceiling {
            violations.push(format!(
                "flatness/{}: 1deg/16deg events-per-sec ratio grew {:.2} -> {:.2} \
                 (ceiling {:.2}); the engine is losing throughput with scale",
                b.mode, b.ratio, c.ratio, ceiling
            ));
        }
    }
    for b in &committed.service {
        let Some(c) = current.service.iter().find(|r| r.scenario == b.scenario) else {
            violations.push(format!(
                "service/{}: row missing from the current measurement",
                b.scenario
            ));
            continue;
        };
        // The request counters are event-derived: the same seeded stream
        // through the same admission rules must produce the same counts
        // on every machine at every lane count. Any drift is semantic.
        for (metric, old, new) in [
            ("offered requests", b.offered, c.offered),
            ("admitted requests", b.admitted, c.admitted),
            ("rejected requests", b.rejected, c.rejected),
            ("deflected requests", b.deflected, c.deflected),
        ] {
            if new != old {
                violations.push(format!(
                    "service/{}: {metric} changed {old} -> {new} (semantics drift?)",
                    b.scenario
                ));
            }
        }
        let floor = b.requests_per_sec * (1.0 - THROUGHPUT_TOLERANCE);
        if c.requests_per_sec < floor {
            violations.push(format!(
                "service/{}: requests/sec fell more than {:.0}% below baseline \
                 ({:.0} < {:.0})",
                b.scenario,
                THROUGHPUT_TOLERANCE * 100.0,
                c.requests_per_sec,
                floor
            ));
        }
    }
    for b in &committed.sweeps {
        let Some(c) = current.sweeps.iter().find(|r| r.axis == b.axis) else {
            violations.push(format!(
                "sweep/{}: row missing from the current measurement",
                b.axis
            ));
            continue;
        };
        // The chain's resume/reuse counters are pure functions of the
        // witness and cadence semantics: any drift means the incremental
        // engine changed behaviour, never noise.
        for (metric, old, new) in [
            ("sweep points", b.points, c.points),
            ("resumed points", b.resumed, c.resumed),
            ("reused events", b.reused_events, c.reused_events),
            ("total events", b.total_events, c.total_events),
        ] {
            if new != old {
                violations.push(format!(
                    "sweep/{}: {metric} changed {old} -> {new} (semantics drift?)",
                    b.axis
                ));
            }
        }
        for (metric, old, new) in [
            (
                "scratch points/sec",
                b.scratch_points_per_sec,
                c.scratch_points_per_sec,
            ),
            (
                "incremental points/sec",
                b.incremental_points_per_sec,
                c.incremental_points_per_sec,
            ),
        ] {
            let floor = old * (1.0 - THROUGHPUT_TOLERANCE);
            if new < floor {
                violations.push(format!(
                    "sweep/{}: {metric} fell more than {:.0}% below baseline ({:.2} < {:.2})",
                    b.axis,
                    THROUGHPUT_TOLERANCE * 100.0,
                    new,
                    floor
                ));
            }
        }
        // Same-run quotient: on floored rows, incremental must beat
        // scratch by the gate on the current machine, whatever its
        // absolute speed.
        if let Some(floor) = sweep_speedup_floor(&b.axis) {
            if c.speedup < floor {
                violations.push(format!(
                    "sweep/{}: incremental speedup {:.2}x is below the {:.1}x floor \
                     ({:.2} vs {:.2} points/sec)",
                    b.axis,
                    c.speedup,
                    floor,
                    c.incremental_points_per_sec,
                    c.scratch_points_per_sec
                ));
            }
        }
    }
    for b in &committed.cache {
        let Some(c) = current.cache.iter().find(|r| r.scenario == b.scenario) else {
            violations.push(format!(
                "cache/{}: row missing from the current measurement",
                b.scenario
            ));
            continue;
        };
        // The hit/miss/single-flight counters are pure functions of the
        // cache and digest semantics: any drift means the memoization
        // layer changed behaviour, never noise.
        for (metric, old, new) in [
            ("cold misses", b.cold_misses, c.cold_misses),
            ("warm hits", b.warm_hits, c.warm_hits),
            (
                "single-flight computes",
                b.single_flight_computes,
                c.single_flight_computes,
            ),
            ("plan candidates", b.plan_candidates, c.plan_candidates),
        ] {
            if new != old {
                violations.push(format!(
                    "cache/{}: {metric} changed {old} -> {new} (semantics drift?)",
                    b.scenario
                ));
            }
        }
        // Machine-local replay floor: both numbers from the current run.
        if c.plan_warm_hits * 100 < c.plan_candidates * PLAN_REPLAY_GATE_PCT {
            violations.push(format!(
                "cache/{}: re-planning replayed only {} of {} candidates from \
                 cache, below the {}% floor",
                b.scenario, c.plan_warm_hits, c.plan_candidates, PLAN_REPLAY_GATE_PCT
            ));
        }
        let floor = b.warm_hits_per_sec * (1.0 - THROUGHPUT_TOLERANCE);
        if c.warm_hits_per_sec < floor {
            violations.push(format!(
                "cache/{}: warm hits/sec fell more than {:.0}% below baseline \
                 ({:.0} < {:.0})",
                b.scenario,
                THROUGHPUT_TOLERANCE * 100.0,
                c.warm_hits_per_sec,
                floor
            ));
        }
    }
    violations
}

/// Renders a one-line-per-metric delta table between a fresh measurement
/// and the committed baseline, annotating every cell with the gate's
/// verdict. `repro bench-json --check` prints this when the gate fails so
/// the CI log names the row, the metric, and the old/new values directly,
/// instead of leaving the reader to diff two JSON files.
pub fn delta_summary(current: &Baseline, committed: &Baseline) -> Vec<String> {
    let mut lines = Vec::new();
    let verdict = |bad: bool| if bad { "FAIL" } else { "ok" };
    let mut push = |name: &str, metric: &str, old: String, new: String, bad: bool| {
        lines.push(format!(
            "{name:<18} {metric:<20} {old:>14} -> {new:<14} {}",
            verdict(bad)
        ));
    };
    for c in &current.workloads {
        let Some(b) = committed.workloads.iter().find(|w| w.name == c.name) else {
            push(
                &c.name,
                "(whole row)",
                "absent".into(),
                "present".into(),
                true,
            );
            continue;
        };
        push(
            &c.name,
            "allocs_per_sim",
            b.allocs_per_sim.to_string(),
            c.allocs_per_sim.to_string(),
            c.allocs_per_sim > b.allocs_per_sim,
        );
        push(
            &c.name,
            "alloc_bytes_per_sim",
            b.alloc_bytes_per_sim.to_string(),
            c.alloc_bytes_per_sim.to_string(),
            c.alloc_bytes_per_sim > b.alloc_bytes_per_sim,
        );
        push(
            &c.name,
            "events",
            b.events.to_string(),
            c.events.to_string(),
            c.events != b.events,
        );
        push(
            &c.name,
            "batch_allocs_per_sim",
            b.batch_allocs_per_sim.to_string(),
            c.batch_allocs_per_sim.to_string(),
            c.batch_allocs_per_sim > b.batch_allocs_per_sim,
        );
        push(
            &c.name,
            "queue_pops",
            b.queue_pops.to_string(),
            c.queue_pops.to_string(),
            c.queue_pops != b.queue_pops,
        );
        push(
            &c.name,
            "queue_cancellations",
            b.queue_cancellations.to_string(),
            c.queue_cancellations.to_string(),
            c.queue_cancellations != b.queue_cancellations,
        );
        push(
            &c.name,
            "queue_peak_pending",
            b.queue_peak_pending.to_string(),
            c.queue_peak_pending.to_string(),
            c.queue_peak_pending != b.queue_peak_pending,
        );
        push(
            &c.name,
            "events_per_sec",
            format!("{:.0}", b.events_per_sec),
            format!("{:.0}", c.events_per_sec),
            c.events_per_sec < b.events_per_sec * (1.0 - THROUGHPUT_TOLERANCE),
        );
        push(
            &c.name,
            "batch_sims_per_sec",
            format!("{:.2}", b.batch_sims_per_sec),
            format!("{:.2}", c.batch_sims_per_sec),
            current.workers == committed.workers
                && c.batch_sims_per_sec < b.batch_sims_per_sec * (1.0 - BATCH_THROUGHPUT_TOLERANCE),
        );
    }
    for b in &committed.flatness {
        let name = format!("flatness/{}", b.mode);
        match current.flatness.iter().find(|f| f.mode == b.mode) {
            Some(c) => push(
                &name,
                "ratio_1deg_16deg",
                format!("{:.2}", b.ratio),
                format!("{:.2}", c.ratio),
                c.ratio > b.ratio * FLATNESS_TOLERANCE,
            ),
            None => push(
                &name,
                "ratio_1deg_16deg",
                format!("{:.2}", b.ratio),
                "absent".into(),
                true,
            ),
        }
    }
    for b in &committed.service {
        let name = format!("service/{}", b.scenario);
        match current.service.iter().find(|r| r.scenario == b.scenario) {
            Some(c) => {
                for (metric, old, new) in [
                    ("offered", b.offered, c.offered),
                    ("admitted", b.admitted, c.admitted),
                    ("rejected", b.rejected, c.rejected),
                    ("deflected", b.deflected, c.deflected),
                ] {
                    push(&name, metric, old.to_string(), new.to_string(), new != old);
                }
                push(
                    &name,
                    "requests_per_sec",
                    format!("{:.0}", b.requests_per_sec),
                    format!("{:.0}", c.requests_per_sec),
                    c.requests_per_sec < b.requests_per_sec * (1.0 - THROUGHPUT_TOLERANCE),
                );
            }
            None => push(
                &name,
                "(whole row)",
                "present".into(),
                "absent".into(),
                true,
            ),
        }
    }
    for b in &committed.sweeps {
        let name = format!("sweep/{}", b.axis);
        match current.sweeps.iter().find(|r| r.axis == b.axis) {
            Some(c) => {
                for (metric, old, new) in [
                    ("points", b.points, c.points),
                    ("resumed", b.resumed, c.resumed),
                    ("reused_events", b.reused_events, c.reused_events),
                    ("total_events", b.total_events, c.total_events),
                ] {
                    push(&name, metric, old.to_string(), new.to_string(), new != old);
                }
                push(
                    &name,
                    "incr_points_per_sec",
                    format!("{:.2}", b.incremental_points_per_sec),
                    format!("{:.2}", c.incremental_points_per_sec),
                    c.incremental_points_per_sec
                        < b.incremental_points_per_sec * (1.0 - THROUGHPUT_TOLERANCE),
                );
                push(
                    &name,
                    "speedup",
                    format!("{:.2}", b.speedup),
                    format!("{:.2}", c.speedup),
                    sweep_speedup_floor(&b.axis).is_some_and(|floor| c.speedup < floor),
                );
            }
            None => push(
                &name,
                "(whole row)",
                "present".into(),
                "absent".into(),
                true,
            ),
        }
    }
    for b in &committed.cache {
        let name = format!("cache/{}", b.scenario);
        match current.cache.iter().find(|r| r.scenario == b.scenario) {
            Some(c) => {
                for (metric, old, new) in [
                    ("cold_misses", b.cold_misses, c.cold_misses),
                    ("warm_hits", b.warm_hits, c.warm_hits),
                    (
                        "single_flight_computes",
                        b.single_flight_computes,
                        c.single_flight_computes,
                    ),
                    ("plan_candidates", b.plan_candidates, c.plan_candidates),
                ] {
                    push(&name, metric, old.to_string(), new.to_string(), new != old);
                }
                push(
                    &name,
                    "plan_warm_hits",
                    b.plan_warm_hits.to_string(),
                    c.plan_warm_hits.to_string(),
                    c.plan_warm_hits * 100 < c.plan_candidates * PLAN_REPLAY_GATE_PCT,
                );
                push(
                    &name,
                    "warm_hits_per_sec",
                    format!("{:.0}", b.warm_hits_per_sec),
                    format!("{:.0}", c.warm_hits_per_sec),
                    c.warm_hits_per_sec < b.warm_hits_per_sec * (1.0 - THROUGHPUT_TOLERANCE),
                );
            }
            None => push(
                &name,
                "(whole row)",
                "present".into(),
                "absent".into(),
                true,
            ),
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        Baseline {
            workers: 1,
            host_parallelism: 1,
            workloads: vec![WorkloadMeasurement {
                name: "1deg/regular".into(),
                tasks: 203,
                events: 1000,
                allocs_per_sim: 42,
                alloc_bytes_per_sim: 4096,
                peak_live_bytes: 2048,
                sims_per_sec: 1234.5,
                events_per_sec: 1_234_500.0,
                batch_allocs_per_sim: 2,
                batch_sims_per_sec: 1300.0,
                queue_pops: 900,
                queue_cancellations: 12,
                queue_peak_pending: 64,
            }],
            scaling: vec![
                ScalingRow {
                    workers: 1,
                    batch_sims_per_sec: 1300.0,
                },
                ScalingRow {
                    workers: 2,
                    batch_sims_per_sec: 2500.25,
                },
            ],
            flatness: vec![FlatnessRow {
                mode: "regular".into(),
                small_events_per_sec: 1_234_500.0,
                large_events_per_sec: 600_000.0,
                ratio: 2.058,
            }],
            service: vec![ServiceScaleRow {
                scenario: "quarter-mixed-reject".into(),
                offered: 25_000,
                admitted: 24_000,
                rejected: 1_000,
                deflected: 0,
                requests_per_sec: 50_000.0,
            }],
            sweeps: vec![
                SweepRow {
                    axis: "processors/4deg-regular".into(),
                    points: 64,
                    resumed: 40,
                    reused_events: 1_500,
                    total_events: 240_000,
                    scratch_points_per_sec: 1_500.0,
                    incremental_points_per_sec: 1_700.0,
                    speedup: 1.13,
                },
                SweepRow {
                    axis: "processors/1deg-regular".into(),
                    points: 128,
                    resumed: 90,
                    reused_events: 20_000,
                    total_events: 32_000,
                    scratch_points_per_sec: 20_000.0,
                    incremental_points_per_sec: 52_000.0,
                    speedup: 2.6,
                },
            ],
            cache: vec![CacheRow {
                scenario: "1deg-procs-grid+plan-replay".into(),
                cold_misses: 16,
                warm_hits: 16,
                single_flight_computes: 1,
                plan_candidates: 74,
                plan_warm_hits: 74,
                warm_hits_per_sec: 90_000.0,
            }],
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let b = sample();
        let parsed = from_json(&to_json(&b)).unwrap();
        assert_eq!(parsed.workloads.len(), 1);
        assert_eq!(parsed.workers, b.workers);
        assert_eq!(parsed.host_parallelism, b.host_parallelism);
        let (a, p) = (&b.workloads[0], &parsed.workloads[0]);
        assert_eq!(a.name, p.name);
        assert_eq!(a.tasks, p.tasks);
        assert_eq!(a.events, p.events);
        assert_eq!(a.allocs_per_sim, p.allocs_per_sim);
        assert_eq!(a.alloc_bytes_per_sim, p.alloc_bytes_per_sim);
        assert_eq!(a.peak_live_bytes, p.peak_live_bytes);
        assert!((a.sims_per_sec - p.sims_per_sec).abs() < 0.01);
        assert!((a.events_per_sec - p.events_per_sec).abs() < 1.0);
        assert_eq!(a.batch_allocs_per_sim, p.batch_allocs_per_sim);
        assert!((a.batch_sims_per_sec - p.batch_sims_per_sec).abs() < 0.01);
        assert_eq!(a.queue_pops, p.queue_pops);
        assert_eq!(a.queue_cancellations, p.queue_cancellations);
        assert_eq!(a.queue_peak_pending, p.queue_peak_pending);
        assert_eq!(parsed.scaling.len(), 2);
        assert_eq!(parsed.scaling[1].workers, 2);
        assert!((parsed.scaling[1].batch_sims_per_sec - 2500.25).abs() < 0.01);
        assert_eq!(parsed.flatness.len(), 1);
        assert_eq!(parsed.flatness[0].mode, "regular");
        assert!((parsed.flatness[0].small_events_per_sec - 1_234_500.0).abs() < 1.0);
        assert!((parsed.flatness[0].large_events_per_sec - 600_000.0).abs() < 1.0);
        assert!((parsed.flatness[0].ratio - 2.058).abs() < 0.001);
        assert_eq!(parsed.service.len(), 1);
        let s = &parsed.service[0];
        assert_eq!(s.scenario, "quarter-mixed-reject");
        assert_eq!(s.offered, 25_000);
        assert_eq!(s.admitted, 24_000);
        assert_eq!(s.rejected, 1_000);
        assert_eq!(s.deflected, 0);
        assert!((s.requests_per_sec - 50_000.0).abs() < 1.0);
        assert_eq!(parsed.sweeps.len(), 2);
        let w = &parsed.sweeps[0];
        assert_eq!(w.axis, "processors/4deg-regular");
        assert_eq!(w.points, 64);
        assert_eq!(w.resumed, 40);
        assert_eq!(w.reused_events, 1_500);
        assert_eq!(w.total_events, 240_000);
        assert!((w.scratch_points_per_sec - 1_500.0).abs() < 0.01);
        assert!((w.incremental_points_per_sec - 1_700.0).abs() < 0.01);
        assert!((w.speedup - 1.13).abs() < 0.01);
        let w = &parsed.sweeps[1];
        assert_eq!(w.axis, "processors/1deg-regular");
        assert_eq!(w.points, 128);
        assert_eq!(w.resumed, 90);
        assert!((w.speedup - 2.6).abs() < 0.01);
        assert_eq!(parsed.cache.len(), 1);
        let r = &parsed.cache[0];
        assert_eq!(r.scenario, "1deg-procs-grid+plan-replay");
        assert_eq!(r.cold_misses, 16);
        assert_eq!(r.warm_hits, 16);
        assert_eq!(r.single_flight_computes, 1);
        assert_eq!(r.plan_candidates, 74);
        assert_eq!(r.plan_warm_hits, 74);
        assert!((r.warm_hits_per_sec - 90_000.0).abs() < 1.0);
    }

    #[test]
    fn rejects_wrong_schema_and_empty_files() {
        assert!(from_json("{}").is_err());
        assert!(from_json("{\"schema\": \"other/v9\", \"workloads\": []}").is_err());
    }

    #[test]
    fn identical_baselines_pass_the_gate() {
        let b = sample();
        assert!(compare(&b, &b).is_empty());
    }

    #[test]
    fn allocation_increase_fails_strictly() {
        let committed = sample();
        let mut current = sample();
        current.workloads[0].allocs_per_sim += 1;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("allocations per simulation"), "{v:?}");
    }

    #[test]
    fn allocation_decrease_passes() {
        let committed = sample();
        let mut current = sample();
        current.workloads[0].allocs_per_sim -= 10;
        current.workloads[0].alloc_bytes_per_sim -= 100;
        assert!(compare(&current, &committed).is_empty());
    }

    #[test]
    fn throughput_gate_is_tolerant_not_absent() {
        let committed = sample();
        let mut current = sample();
        // 50% slower: within tolerance.
        current.workloads[0].events_per_sec = committed.workloads[0].events_per_sec * 0.5;
        assert!(compare(&current, &committed).is_empty());
        // 80% slower: out of tolerance.
        current.workloads[0].events_per_sec = committed.workloads[0].events_per_sec * 0.2;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("events/sec"), "{v:?}");
    }

    #[test]
    fn event_count_drift_is_flagged() {
        let committed = sample();
        let mut current = sample();
        current.workloads[0].events -= 1;
        let v = compare(&current, &committed);
        assert!(v.iter().any(|m| m.contains("semantics drift")), "{v:?}");
    }

    #[test]
    fn kernel_counter_drift_is_flagged_in_both_directions() {
        let committed = sample();
        let mut current = sample();
        // A *decrease* is drift too: these columns pin kernel semantics,
        // not budgets.
        current.workloads[0].queue_pops -= 1;
        current.workloads[0].queue_peak_pending += 5;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("calendar-queue pops"), "{v:?}");
        assert!(v[1].contains("calendar-queue peak pending"), "{v:?}");
        // Cancellations likewise.
        let mut current = sample();
        current.workloads[0].queue_cancellations += 1;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("calendar-queue cancellations"), "{v:?}");
    }

    #[test]
    fn missing_workload_is_flagged() {
        let committed = Baseline {
            workers: 1,
            host_parallelism: 1,
            workloads: vec![],
            scaling: vec![],
            flatness: vec![],
            service: vec![],
            sweeps: vec![],
            cache: vec![],
        };
        // An empty committed set can't happen via from_json, but the gate
        // still reports the mismatch rather than silently passing.
        let v = compare(&sample(), &committed);
        assert!(v[0].contains("not present"), "{v:?}");
    }

    #[test]
    fn warm_scratch_allocation_increase_fails_strictly() {
        let committed = sample();
        let mut current = sample();
        current.workloads[0].batch_allocs_per_sim += 1;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("warm-scratch allocations"), "{v:?}");
    }

    #[test]
    fn warm_scratch_budget_is_absolute_on_paper_sized_workloads() {
        // Even if the committed file itself is over budget, a 1-4deg row
        // above WARM_ALLOC_BUDGET fails.
        let mut committed = sample();
        committed.workloads[0].batch_allocs_per_sim = WARM_ALLOC_BUDGET + 3;
        let mut current = committed.clone();
        current.workloads[0].batch_allocs_per_sim = WARM_ALLOC_BUDGET + 1;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("exceed"), "{v:?}");
        // A scale-up row is exempt from the absolute cap.
        committed.workloads[0].name = "16deg/regular".into();
        let mut big = committed.clone();
        big.workloads[0].batch_allocs_per_sim = WARM_ALLOC_BUDGET + 1;
        assert!(compare(&big, &committed).is_empty());
    }

    #[test]
    fn batch_throughput_gate_only_fires_when_lane_counts_match() {
        let committed = sample();
        let mut current = sample();
        // 80% slower batch at the same lane count: out of tolerance.
        current.workloads[0].batch_sims_per_sec = committed.workloads[0].batch_sims_per_sec * 0.2;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("batch sims/sec"), "{v:?}");
        // Same numbers but measured with a different MCLOUD_WORKERS: the
        // rates are not comparable, so the gate stays quiet.
        current.workers = 4;
        current.host_parallelism = 1;
        assert!(compare(&current, &committed).is_empty());
    }

    #[test]
    fn speedup_gate_requires_parallel_hardware_and_lanes() {
        let committed = sample();
        let mut current = sample();
        // Batch no faster than single-sim. On a 1-core / 1-lane run the
        // speedup gate must not fire...
        current.workloads[0].batch_sims_per_sec = current.workloads[0].sims_per_sec;
        assert!(compare(&current, &committed).is_empty());
        // ...but with lanes and cores available it must.
        current.workers = 4;
        current.host_parallelism = 4;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("below 1.5x"), "{v:?}");
        // Meeting the ratio clears it.
        current.workloads[0].batch_sims_per_sec =
            BATCH_SPEEDUP_GATE * current.workloads[0].sims_per_sec;
        assert!(compare(&current, &committed).is_empty());
    }

    #[test]
    fn workload_list_covers_all_sizes_and_modes() {
        let ws = workloads();
        assert_eq!(ws.len(), BASELINE_DEGREES.len() * DataMode::ALL.len());
        let names: Vec<String> = ws.iter().map(Workload::name).collect();
        assert!(names.contains(&"4deg/regular".to_string()));
        assert!(names.contains(&"16deg/remote-io".to_string()));
    }

    #[test]
    fn tiny_workload_measures_deterministically() {
        // The smallest workload twice over: the deterministic columns must
        // agree exactly between independent measurements.
        let w = Workload {
            degrees: 1.0,
            mode: DataMode::Regular,
        };
        let a = measure_workload(&w, 1);
        let b = measure_workload(&w, 1);
        assert_eq!(a.tasks, 203);
        assert!(a.events > 0);
        assert_eq!(a.events, b.events);
        assert_eq!(a.allocs_per_sim, b.allocs_per_sim);
        assert_eq!(a.alloc_bytes_per_sim, b.alloc_bytes_per_sim);
        assert_eq!(a.peak_live_bytes, b.peak_live_bytes);
        assert_eq!(a.batch_allocs_per_sim, b.batch_allocs_per_sim);
        assert_eq!(a.queue_pops, b.queue_pops);
        assert_eq!(a.queue_cancellations, b.queue_cancellations);
        assert_eq!(a.queue_peak_pending, b.queue_peak_pending);
        assert!(a.queue_pops > 0);
        assert!(
            a.batch_allocs_per_sim <= WARM_ALLOC_BUDGET,
            "warm scratch must not allocate: {} allocs/sim",
            a.batch_allocs_per_sim
        );
    }

    #[test]
    fn flatness_rows_pair_small_and_large_workloads_per_mode() {
        let mk = |name: &str, eps: f64| {
            let mut w = sample().workloads[0].clone();
            w.name = name.into();
            w.events_per_sec = eps;
            w
        };
        let rows = flatness_rows(&[
            mk("1deg/regular", 9_000_000.0),
            mk("16deg/regular", 4_500_000.0),
            mk("1deg/cleanup", 8_000_000.0),
            // No 16deg/cleanup row: the cleanup mode must be skipped, not
            // fabricated.
        ]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].mode, "regular");
        assert!((rows[0].ratio - 2.0).abs() < 1e-9);
        assert!((rows[0].small_events_per_sec - 9_000_000.0).abs() < 1e-3);
        assert!((rows[0].large_events_per_sec - 4_500_000.0).abs() < 1e-3);
    }

    #[test]
    fn flatness_regression_fails_the_gate() {
        let committed = sample();
        let mut current = sample();
        // Ratio growing past FLATNESS_TOLERANCE x the committed one: the
        // engine got disproportionately slower at 16deg.
        current.flatness[0].ratio = committed.flatness[0].ratio * FLATNESS_TOLERANCE * 1.01;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("flatness/regular"), "{v:?}");
        // At exactly the ceiling it still passes (the tolerance is the
        // allowance, not the trigger).
        current.flatness[0].ratio = committed.flatness[0].ratio * FLATNESS_TOLERANCE;
        assert!(compare(&current, &committed).is_empty());
        // A flatter-than-committed ratio is an improvement, never a failure.
        current.flatness[0].ratio = committed.flatness[0].ratio * 0.5;
        assert!(compare(&current, &committed).is_empty());
    }

    #[test]
    fn missing_flatness_row_fails_the_gate() {
        let committed = sample();
        let mut current = sample();
        current.flatness.clear();
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("row missing"), "{v:?}");
    }

    #[test]
    fn service_counter_drift_is_flagged_in_both_directions() {
        let committed = sample();
        let mut current = sample();
        // A rejected request moving to admitted is drift on both
        // counters even though the offered total is unchanged.
        current.service[0].admitted += 1;
        current.service[0].rejected -= 1;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("admitted requests"), "{v:?}");
        assert!(v[1].contains("rejected requests"), "{v:?}");
    }

    #[test]
    fn service_throughput_gate_is_tolerant_not_absent() {
        let committed = sample();
        let mut current = sample();
        current.service[0].requests_per_sec = committed.service[0].requests_per_sec * 0.5;
        assert!(compare(&current, &committed).is_empty());
        current.service[0].requests_per_sec = committed.service[0].requests_per_sec * 0.2;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("requests/sec"), "{v:?}");
    }

    #[test]
    fn missing_service_row_fails_the_gate() {
        let committed = sample();
        let mut current = sample();
        current.service.clear();
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("service/quarter-mixed-reject"), "{v:?}");
    }

    #[test]
    fn sweep_counter_drift_is_flagged_in_both_directions() {
        let committed = sample();
        let mut current = sample();
        // Fewer resumes with more replayed events: the witness or cadence
        // changed — exact drift, both directions.
        current.sweeps[0].resumed -= 1;
        current.sweeps[0].reused_events -= 500;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("resumed points"), "{v:?}");
        assert!(v[1].contains("reused events"), "{v:?}");
    }

    #[test]
    fn sweep_speedup_floor_is_hard() {
        let committed = sample();
        let mut current = sample();
        // Losing the sublinear win on the showcase row fails even when
        // points/sec stays within the tolerant band.
        current.sweeps[1].incremental_points_per_sec = 21_000.0;
        current.sweeps[1].speedup = 1.05;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("below the 2.0x floor"), "{v:?}");
        // At the floor it passes.
        current.sweeps[1].speedup = SWEEP_SPEEDUP_GATE;
        current.sweeps[1].incremental_points_per_sec = 41_000.0;
        assert!(compare(&current, &committed).is_empty());
        // The wide-workflow 4° row carries no hard floor: its quotient is
        // informational (reuse is locked by the exact counters).
        current.sweeps[0].speedup = 0.9;
        assert!(compare(&current, &committed).is_empty());
        assert!(sweep_speedup_floor("processors/4deg-regular").is_none());
        assert_eq!(
            sweep_speedup_floor("processors/1deg-regular"),
            Some(SWEEP_SPEEDUP_GATE)
        );
    }

    #[test]
    fn missing_sweep_row_fails_the_gate() {
        let committed = sample();
        let mut current = sample();
        current.sweeps.clear();
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("sweep/processors/4deg-regular"), "{v:?}");
        assert!(v[1].contains("sweep/processors/1deg-regular"), "{v:?}");
    }

    #[test]
    fn tiny_sweep_row_measures_deterministically_and_reuses_events() {
        // A small axis in debug builds: the deterministic chain counters
        // must agree between independent measurements, and the chain must
        // actually resume points on a plain processor axis. The axis
        // reaches past the 1° mosaic's peak parallelism (~50), where the
        // witness stops firing and resumes replay zero events.
        let a = measure_sweep_row(1.0, 64, 1);
        let b = measure_sweep_row(1.0, 64, 1);
        assert_eq!(a.axis, "processors/1deg-regular");
        assert_eq!(a.points, 64);
        assert_eq!(a.resumed, b.resumed);
        assert_eq!(a.reused_events, b.reused_events);
        assert_eq!(a.total_events, b.total_events);
        assert!(a.resumed > 0, "{a:?}");
        assert!(a.reused_events > 0, "{a:?}");
        assert!(a.total_events > a.reused_events, "{a:?}");
    }

    #[test]
    fn service_scale_measurement_is_deterministic() {
        // The counted campaign twice over: the deterministic counters
        // must agree exactly, and the scenario must actually exercise
        // the admission path (some requests rejected, none lost).
        let a = measure_service_scale(1);
        let b = measure_service_scale(1);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].scenario, b[0].scenario);
        assert_eq!(a[0].offered, b[0].offered);
        assert_eq!(a[0].admitted, b[0].admitted);
        assert_eq!(a[0].rejected, b[0].rejected);
        assert_eq!(a[0].deflected, b[0].deflected);
        assert!(a[0].offered > 10_000, "{}", a[0].offered);
        assert!(a[0].rejected > 0, "the flash crowd must overflow the queue");
        assert_eq!(a[0].admitted + a[0].rejected, a[0].offered);
    }

    #[test]
    fn delta_summary_names_the_failing_metric() {
        let committed = sample();
        let mut current = sample();
        current.workloads[0].allocs_per_sim += 7;
        current.flatness[0].ratio = committed.flatness[0].ratio * 3.0;
        let lines = delta_summary(&current, &committed);
        // One line per gated metric per row, plus the flatness, service,
        // sweep and cache rows (9 workload + 1 flatness + 5 service +
        // 2×6 sweep + 6 cache).
        assert_eq!(lines.len(), 33, "{lines:?}");
        let failing: Vec<&String> = lines.iter().filter(|l| l.ends_with("FAIL")).collect();
        assert_eq!(failing.len(), 2, "{lines:?}");
        assert!(
            failing[0].contains("allocs_per_sim") && failing[0].contains("42 -> 49"),
            "{failing:?}"
        );
        assert!(
            failing[1].contains("flatness/regular") && failing[1].contains("ratio_1deg_16deg"),
            "{failing:?}"
        );
        // Metrics inside tolerance carry an "ok" verdict, not silence.
        assert!(
            lines
                .iter()
                .any(|l| l.contains("events_per_sec") && l.ends_with("ok")),
            "{lines:?}"
        );
    }

    #[test]
    fn scaling_rows_cover_one_two_and_four_lanes() {
        let rows = measure_scaling(1);
        assert_eq!(
            rows.iter().map(|r| r.workers).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        assert!(rows.iter().all(|r| r.batch_sims_per_sec > 0.0));
    }

    #[test]
    fn cache_counter_drift_is_flagged_in_both_directions() {
        let committed = sample();
        let mut current = sample();
        // A point dropping out of the warm pass while the cold pass grew
        // is drift on both counters, whichever direction each moved.
        current.cache[0].cold_misses += 1;
        current.cache[0].warm_hits -= 1;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("cold misses"), "{v:?}");
        assert!(v[1].contains("warm hits"), "{v:?}");
        // A second simulation slipping past single-flight likewise.
        let mut current = sample();
        current.cache[0].single_flight_computes = 2;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("single-flight computes"), "{v:?}");
    }

    #[test]
    fn plan_replay_floor_is_machine_local_and_hard() {
        let committed = sample();
        let mut current = sample();
        // 66 of 74 replayed (89.2%): below the 90% floor, even though the
        // committed row would never have shown it.
        current.cache[0].plan_warm_hits = 66;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("below the 90% floor"), "{v:?}");
        // 67 of 74 (90.5%) clears it.
        current.cache[0].plan_warm_hits = 67;
        assert!(compare(&current, &committed).is_empty());
    }

    #[test]
    fn cache_throughput_gate_is_tolerant_not_absent() {
        let committed = sample();
        let mut current = sample();
        current.cache[0].warm_hits_per_sec = committed.cache[0].warm_hits_per_sec * 0.5;
        assert!(compare(&current, &committed).is_empty());
        current.cache[0].warm_hits_per_sec = committed.cache[0].warm_hits_per_sec * 0.2;
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("warm hits/sec"), "{v:?}");
    }

    #[test]
    fn missing_cache_row_fails_the_gate() {
        let committed = sample();
        let mut current = sample();
        current.cache.clear();
        let v = compare(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("cache/1deg-procs-grid+plan-replay"), "{v:?}");
    }

    #[test]
    fn tiny_cache_row_measures_deterministically() {
        // The cache row twice over: every counter is a pure function of
        // the cache and digest semantics, so independent measurements
        // must agree exactly — and the row must show the shape the gate
        // relies on (full warm coverage, one compute through the race,
        // a ≥90% planner replay).
        let a = measure_cache(1);
        let b = measure_cache(1);
        assert_eq!(a.len(), 1);
        let (a, b) = (&a[0], &b[0]);
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.cold_misses, b.cold_misses);
        assert_eq!(a.warm_hits, b.warm_hits);
        assert_eq!(a.single_flight_computes, b.single_flight_computes);
        assert_eq!(a.plan_candidates, b.plan_candidates);
        assert_eq!(a.plan_warm_hits, b.plan_warm_hits);
        assert_eq!(a.cold_misses, CACHE_GRID_PROCS as u64);
        assert_eq!(a.warm_hits, CACHE_GRID_PROCS as u64);
        assert_eq!(a.single_flight_computes, 1);
        assert!(a.plan_candidates > 0);
        assert!(
            a.plan_warm_hits * 100 >= a.plan_candidates * PLAN_REPLAY_GATE_PCT,
            "{a:?}"
        );
        assert!(a.warm_hits_per_sec > 0.0);
    }
}
