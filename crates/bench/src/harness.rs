//! A dependency-free stopwatch harness for the `harness = false` benches.
//!
//! Each bench calls [`Bench::run`] with a closure; the harness calibrates
//! an iteration count against a time target, takes several samples, and
//! prints min / median / mean per-iteration times. It honours the
//! positional filter argument `cargo bench` forwards (substring match on
//! the bench name) and exits immediately under `--list` or when
//! `MCLOUD_BENCH_DRY=1` is set, so CI can compile-and-smoke the benches
//! without paying for full timing runs.

use std::time::{Duration, Instant};

/// Stopwatch bench runner; construct once per bench binary.
pub struct Bench {
    filter: Option<String>,
    target: Duration,
    samples: u32,
    dry: bool,
}

impl Bench {
    /// Builds a runner from the process arguments and environment.
    pub fn from_env() -> Self {
        let mut filter = None;
        let mut list = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--exact" | "--nocapture" => {}
                "--list" => list = true,
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        let dry = list || std::env::var_os("MCLOUD_BENCH_DRY").is_some_and(|v| v == "1");
        let target = std::env::var("MCLOUD_BENCH_TARGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map_or(Duration::from_millis(300), Duration::from_millis);
        Bench {
            filter,
            target,
            samples: 5,
            dry,
        }
    }

    /// Times `f`, printing one line of statistics. Skipped when the name
    /// does not match the filter; runs `f` once (untimed) in dry mode.
    pub fn run<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        if self
            .filter
            .as_deref()
            .is_some_and(|pat| !name.contains(pat))
        {
            return;
        }
        if self.dry {
            std::hint::black_box(f());
            println!("{name}: ok (dry)");
            return;
        }
        // Calibrate: grow the iteration count until one sample spans the
        // per-sample time budget.
        let budget = self.target / self.samples;
        let mut iters = 1u64;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= budget || iters >= 1 << 20 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            // Aim straight at the budget, with headroom for noise.
            let scale = (budget.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).min(100.0);
            iters = ((iters as f64 * scale * 1.2).ceil() as u64).max(iters + 1);
        };
        let iters = ((budget.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1 << 20);
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t.elapsed().as_secs_f64() / iters as f64
            })
            .collect();
        times.sort_by(f64::total_cmp);
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        println!(
            "{name}: min {} | median {} | mean {}  ({iters} iters x {} samples)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            self.samples,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_picks_sane_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(0.0042), "4.200 ms");
        assert_eq!(fmt_time(3.2e-6), "3.200 us");
        assert_eq!(fmt_time(5.0e-8), "50.0 ns");
    }

    #[test]
    fn dry_runner_invokes_the_closure_once() {
        let bench = Bench {
            filter: None,
            target: Duration::from_millis(1),
            samples: 2,
            dry: true,
        };
        let mut calls = 0;
        bench.run("probe", || calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_nonmatching_names() {
        let bench = Bench {
            filter: Some("engine".into()),
            target: Duration::from_millis(1),
            samples: 2,
            dry: true,
        };
        let mut calls = 0;
        bench.run("figures/unrelated", || calls += 1);
        assert_eq!(calls, 0);
        bench.run("engine/simulate", || calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn timed_runner_reports_without_panicking() {
        let bench = Bench {
            filter: None,
            target: Duration::from_micros(200),
            samples: 2,
            dry: false,
        };
        bench.run("noop", || std::hint::black_box(1 + 1));
    }
}
