//! One function per table/figure of the paper's evaluation.
//!
//! Every function returns a [`Table`] whose rows are the series the paper
//! plots, so the reproduction can be compared line by line (see
//! `EXPERIMENTS.md` at the workspace root for the paper-vs-measured log).

use mcloud_core::{simulate, DataMode, ExecConfig, Report};
use mcloud_cost::{ArchiveOrRecompute, Campaign, DatasetHosting, Money, Pricing};
use mcloud_dag::Workflow;
use mcloud_montage::{generate, MosaicConfig};
use mcloud_sweep::{
    ccr_sweep, fault_rate_sweep_incremental, geometric_processors, mode_matrix, pareto_frontier,
    processor_sweep, processor_sweep_incremental, CostTimePoint, Table,
};

/// The paper's three canonical mosaic sizes.
pub const CANONICAL_DEGREES: [f64; 3] = [1.0, 2.0, 4.0];

fn canonical(degrees: f64) -> Workflow {
    generate(&MosaicConfig::new(degrees))
}

fn d3(m: Money) -> String {
    format!("{:.3}", m.dollars())
}

fn d4(m: Money) -> String {
    format!("{:.4}", m.dollars())
}

/// Figures 4-6: execution costs and execution time of the `degrees`-square
/// Montage workflow versus provisioned processors (1..128, geometric).
///
/// Matches the paper's series: CPU cost, storage cost with and without
/// cleanup, transfer cost, total cost (using the no-cleanup storage), and
/// the makespan in hours. Fixed provisioning, Regular data mode.
pub fn fig_processor_sweep(degrees: f64) -> Table {
    let wf = canonical(degrees);
    let base_regular = ExecConfig::paper_default().mode(DataMode::Regular);
    let base_cleanup = ExecConfig::paper_default().mode(DataMode::DynamicCleanup);
    let procs = geometric_processors(128);
    // Incremental re-simulation: byte-identical to `processor_sweep`,
    // sublinear in points (adjacent counts fork off shared checkpoints).
    let regular = processor_sweep_incremental(&wf, &base_regular, &procs);
    let cleanup = processor_sweep_incremental(&wf, &base_cleanup, &procs);

    let mut t = Table::new(vec![
        "processors",
        "cpu_cost",
        "storage_cost",
        "storage_cost_cleanup",
        "transfer_cost",
        "total_cost",
        "runtime_hours",
    ]);
    for (r, c) in regular.iter().zip(&cleanup) {
        assert_eq!(r.processors, c.processors);
        let costs = &r.report.costs;
        t.push_row(vec![
            r.processors.to_string(),
            d3(costs.cpu),
            d4(costs.storage),
            d4(c.report.costs.storage),
            d3(costs.transfer()),
            d3(costs.total()),
            format!("{:.3}", r.report.makespan_hours()),
        ]);
    }
    t
}

/// Figures 7-9: data-management metrics of the `degrees`-square workflow
/// under the three modes with on-demand compute: storage space-time,
/// data transferred in/out, and the per-category dollar costs (the paper's
/// "total" in these figures excludes CPU).
pub fn fig_mode_metrics(degrees: f64) -> Table {
    let wf = canonical(degrees);
    let points = mode_matrix(&wf, &ExecConfig::paper_default());
    let mut t = Table::new(vec![
        "mode",
        "storage_gb_hours",
        "gb_in",
        "gb_out",
        "storage_cost",
        "transfer_in_cost",
        "transfer_out_cost",
        "dm_total_cost",
    ]);
    for p in &points {
        let r = &p.report;
        t.push_row(vec![
            p.mode.label().to_string(),
            format!("{:.4}", r.storage_gb_hours()),
            format!("{:.4}", r.gb_in()),
            format!("{:.4}", r.gb_out()),
            d4(r.costs.storage),
            d4(r.costs.transfer_in),
            d4(r.costs.transfer_out),
            d4(r.costs.data_management()),
        ]);
    }
    t
}

/// Figure 10: CPU cost versus aggregated data-management cost for all
/// three workflows under each execution mode (on-demand compute).
pub fn fig10_cpu_vs_dm() -> Table {
    let mut t = Table::new(vec![
        "workflow",
        "mode",
        "cpu_cost",
        "dm_cost",
        "total_cost",
    ]);
    for degrees in CANONICAL_DEGREES {
        let wf = canonical(degrees);
        for p in mode_matrix(&wf, &ExecConfig::paper_default()) {
            let r = &p.report;
            t.push_row(vec![
                format!("{degrees}deg"),
                p.mode.label().to_string(),
                d3(r.costs.cpu),
                d3(r.costs.data_management()),
                d3(r.total_cost()),
            ]);
        }
    }
    t
}

/// The CCR table of Section 6 (Question 2a): the communication-to-
/// computation ratio of the three workflows at the 10 Mbps reference link
/// (paper: 0.053 / 0.053 / 0.045).
pub fn ccr_table() -> Table {
    let mut t = Table::new(vec!["workflow", "ccr"]);
    for degrees in CANONICAL_DEGREES {
        let wf = canonical(degrees);
        t.push_row(vec![
            format!("Montage {degrees} Degree"),
            format!("{:.4}", wf.ccr_at_link(10e6)),
        ]);
    }
    t
}

/// Figure 11: execution costs of the 1-degree workflow as its CCR is
/// scaled up (file sizes multiplied by `CCR_d / CCR_r`), on 8 provisioned
/// processors — "8 processors were chosen since they represent a
/// reasonable compromise".
pub fn fig11_ccr_sweep() -> Table {
    let wf = canonical(1.0);
    let targets = [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2];
    let regular = ccr_sweep(&wf, &ExecConfig::fixed(8), &targets);
    let cleanup = ccr_sweep(
        &wf,
        &ExecConfig::fixed(8).mode(DataMode::DynamicCleanup),
        &targets,
    );
    let mut t = Table::new(vec![
        "target_ccr",
        "actual_ccr",
        "cpu_cost",
        "storage_cost",
        "storage_cost_cleanup",
        "transfer_cost",
        "total_cost",
        "runtime_hours",
    ]);
    for (r, c) in regular.iter().zip(&cleanup) {
        let costs = &r.report.costs;
        t.push_row(vec![
            format!("{:.3}", r.target_ccr),
            format!("{:.4}", r.actual_ccr),
            d3(costs.cpu),
            d4(costs.storage),
            d4(c.report.costs.storage),
            d3(costs.transfer()),
            d3(costs.total()),
            format!("{:.3}", r.report.makespan_hours()),
        ]);
    }
    t
}

/// Question 2b: the economics of hosting the 12 TB 2MASS archive in the
/// cloud versus staging inputs per request, anchored by simulated 2-degree
/// request costs with and without pre-staged data.
pub fn q2b_hosting() -> Table {
    let wf = canonical(2.0);
    let staged = simulate(&wf, &ExecConfig::paper_default());
    let hosted = simulate(&wf, &ExecConfig::paper_default().prestaged(true));
    let pricing = Pricing::amazon_2008();
    let dataset_bytes = 12_000 * 1_000_000_000u64;
    let hosting = DatasetHosting {
        dataset_bytes,
        request_cost_staged: staged.total_cost(),
        request_cost_hosted: hosted.total_cost(),
    };
    let mut t = Table::new(vec!["quantity", "value"]);
    t.push_row(vec![
        "2deg request cost, staged ($)".to_string(),
        d3(staged.total_cost()),
    ]);
    t.push_row(vec![
        "2deg request cost, hosted ($)".to_string(),
        d3(hosted.total_cost()),
    ]);
    t.push_row(vec![
        "saving per request ($)".to_string(),
        d4(hosting.saving_per_request()),
    ]);
    t.push_row(vec![
        "2MASS monthly storage ($/month)".to_string(),
        format!(
            "{:.0}",
            pricing.monthly_storage_cost(dataset_bytes).dollars()
        ),
    ]);
    t.push_row(vec![
        "break-even requests/month".to_string(),
        format!("{:.0}", hosting.break_even_requests_per_month(&pricing)),
    ]);
    t.push_row(vec![
        "one-time ingest cost ($)".to_string(),
        format!("{:.0}", hosting.ingest_cost(&pricing).dollars()),
    ]);
    t
}

/// Question 3: the whole-sky campaign (3,900 4-degree plates per band
/// set) and the archive-vs-recompute break-even for each mosaic size.
pub fn q3_whole_sky() -> Table {
    let pricing = Pricing::amazon_2008();
    let wf4 = canonical(4.0);
    let staged = simulate(&wf4, &ExecConfig::paper_default());
    let hosted = simulate(&wf4, &ExecConfig::paper_default().prestaged(true));
    let mut t = Table::new(vec!["quantity", "value"]);
    t.push_row(vec![
        "4deg request cost, staged ($)".to_string(),
        d3(staged.total_cost()),
    ]);
    t.push_row(vec![
        "4deg request cost, hosted ($)".to_string(),
        d3(hosted.total_cost()),
    ]);
    for (label, report) in [("staged", &staged), ("hosted", &hosted)] {
        let campaign = Campaign {
            requests: 3_900,
            cost_per_request: report.total_cost(),
        };
        t.push_row(vec![
            format!("whole sky, 3900 plates, {label} ($)"),
            format!("{:.0}", campaign.total().dollars()),
        ]);
    }
    // Archive-or-recompute break-even per mosaic size.
    for degrees in CANONICAL_DEGREES {
        let wf = canonical(degrees);
        let report = simulate(&wf, &ExecConfig::paper_default());
        let mosaic = wf
            .staged_out_files()
            .iter()
            .map(|&f| wf.file(f))
            .find(|f| f.name.ends_with(".fits"))
            .expect("every mosaic workflow delivers a FITS mosaic");
        let archive = ArchiveOrRecompute {
            recompute_cost: report.costs.cpu,
            product_bytes: mosaic.bytes,
        };
        t.push_row(vec![
            format!("{degrees}deg mosaic archival break-even (months)"),
            format!("{:.2}", archive.break_even_months(&pricing)),
        ]);
    }
    t
}

/// Extension (not in the paper, which assumed idealized per-second
/// billing): how much the paper's conclusions shift under real 2008 EC2
/// hour-granular billing, per provisioned processor count.
pub fn granularity_ablation(degrees: f64) -> Table {
    use mcloud_cost::ChargeGranularity;
    let wf = canonical(degrees);
    let procs = geometric_processors(128);
    let exact = processor_sweep(&wf, &ExecConfig::paper_default(), &procs);
    let hourly = processor_sweep(
        &wf,
        &ExecConfig::paper_default().with_granularity(ChargeGranularity::HourlyCpu),
        &procs,
    );
    let mut t = Table::new(vec![
        "processors",
        "total_exact",
        "total_hourly",
        "overcharge_pct",
    ]);
    for (e, h) in exact.iter().zip(&hourly) {
        let te = e.report.total_cost().dollars();
        let th = h.report.total_cost().dollars();
        t.push_row(vec![
            e.processors.to_string(),
            format!("{te:.3}"),
            format!("{th:.3}"),
            format!("{:.1}", (th - te) / te * 100.0),
        ]);
    }
    t
}

/// Extension: the Pareto frontier of the cost/makespan trade-off across
/// provisioning levels (the decision the paper walks through by hand for
/// the 4-degree workflow).
pub fn pareto_table(degrees: f64) -> Table {
    let wf = canonical(degrees);
    let procs = geometric_processors(128);
    let points = processor_sweep(&wf, &ExecConfig::paper_default(), &procs);
    let ct: Vec<CostTimePoint> = points
        .iter()
        .map(|p| CostTimePoint {
            cost: p.report.total_cost().dollars(),
            time: p.report.makespan.as_secs_f64(),
        })
        .collect();
    let frontier = pareto_frontier(&ct);
    let mut t = Table::new(vec![
        "processors",
        "total_cost",
        "runtime_hours",
        "on_frontier",
    ]);
    for (i, p) in points.iter().enumerate() {
        t.push_row(vec![
            p.processors.to_string(),
            format!("{:.3}", p.report.total_cost().dollars()),
            format!("{:.3}", p.report.makespan_hours()),
            if frontier.contains(&i) {
                "yes".to_string()
            } else {
                "no".to_string()
            },
        ]);
    }
    t
}

/// Convenience: one simulated report for a canonical workflow under the
/// paper-default on-demand Regular plan.
pub fn baseline_report(degrees: f64) -> Report {
    simulate(&canonical(degrees), &ExecConfig::paper_default())
}

/// Extension: FIFO-by-id versus critical-path-first list scheduling across
/// provisioning levels. Montage is level-structured, so the gap is small —
/// which is itself a result worth pinning down.
pub fn policy_ablation(degrees: f64) -> Table {
    use mcloud_core::SchedulePolicy;
    let wf = canonical(degrees);
    let procs = geometric_processors(128);
    let fifo = processor_sweep(&wf, &ExecConfig::paper_default(), &procs);
    let cp = processor_sweep(
        &wf,
        &ExecConfig::paper_default().with_policy(SchedulePolicy::CriticalPathFirst),
        &procs,
    );
    let mut t = Table::new(vec![
        "processors",
        "fifo_hours",
        "cp_first_hours",
        "gap_pct",
    ]);
    for (f, c) in fifo.iter().zip(&cp) {
        let (a, b) = (f.report.makespan_hours(), c.report.makespan_hours());
        t.push_row(vec![
            f.processors.to_string(),
            format!("{a:.4}"),
            format!("{b:.4}"),
            format!("{:.2}", (a - b) / a * 100.0),
        ]);
    }
    t
}

/// Extension: how task-failure rates inflate cost and turnaround (the
/// paper flags reliability as an open concern). On-demand billing, so
/// every retried attempt is paid for.
pub fn failure_sweep(degrees: f64) -> Table {
    let wf = canonical(degrees);
    let mut t = Table::new(vec![
        "failure_prob",
        "attempts",
        "failed",
        "total_cost",
        "cost_overhead_pct",
        "runtime_hours",
    ]);
    // The zero-rate point doubles as the overhead baseline; the chain
    // builds the same per-rate configs `with_faults` would.
    let points = fault_rate_sweep_incremental(
        &wf,
        &ExecConfig::paper_default(),
        &[0.0, 0.02, 0.05, 0.1, 0.2, 0.3],
        2008,
    );
    let base = &points[0].report;
    for p in &points {
        let r = &p.report;
        let overhead = (r.total_cost().dollars() - base.total_cost().dollars())
            / base.total_cost().dollars()
            * 100.0;
        t.push_row(vec![
            format!("{:.2}", p.failure_prob),
            r.task_executions.to_string(),
            r.failed_attempts.to_string(),
            format!("{:.3}", r.total_cost().dollars()),
            format!("{overhead:.1}"),
            format!("{:.3}", r.makespan_hours()),
        ]);
    }
    t
}

/// Extension: the reliability economics of the 1-degree mosaic under the
/// full fault model — seeded task faults swept across rates on a bounded
/// retry-with-backoff policy, with transfer faults and preemptions held
/// fixed. Shows retry-inflated makespan/cost, the wasted-work bill, and
/// (at brutal rates) the graceful dead-letter abort.
pub fn fault_reliability_table() -> Table {
    use mcloud_core::{FaultModel, RetryPolicy};
    let wf = canonical(1.0);
    let base = ExecConfig {
        faults: Some(FaultModel {
            task_failure_prob: 0.0,
            transfer_failure_prob: 0.05,
            proc_mttf_s: 20_000.0,
            seed: 2008,
        }),
        ..ExecConfig::fixed(8).with_retry(RetryPolicy::bounded(3))
    };
    let points = fault_rate_sweep_incremental(&wf, &base, &[0.0, 0.01, 0.02, 0.05, 0.1, 0.2], 2008);
    let mut t = Table::new(vec![
        "failure_prob",
        "attempts",
        "failed",
        "retries",
        "preemptions",
        "transfer_failures",
        "completed",
        "makespan_hours",
        "total_cost",
        "wasted_cpu_s",
    ]);
    for p in &points {
        let r = &p.report;
        t.push_row(vec![
            format!("{:.2}", p.failure_prob),
            r.task_executions.to_string(),
            r.failed_attempts.to_string(),
            r.retries.to_string(),
            r.preemptions.to_string(),
            r.transfer_failures.to_string(),
            if r.completed { "yes" } else { "no" }.to_string(),
            format!("{:.3}", r.makespan_hours()),
            format!("{:.3}", r.total_cost().dollars()),
            format!("{:.1}", r.wasted_cpu_seconds),
        ]);
    }
    t
}

/// Extension: VM startup overhead versus provisioning level — boot time is
/// paid on every node, so it punishes wide provisioning of short runs.
pub fn vm_overhead_table(degrees: f64) -> Table {
    use mcloud_core::VmOverhead;
    let wf = canonical(degrees);
    let procs = geometric_processors(128);
    let mut t = Table::new(vec![
        "processors",
        "cost_no_overhead",
        "cost_300s_boot",
        "cost_900s_boot",
        "hours_900s_boot",
    ]);
    let none = processor_sweep(&wf, &ExecConfig::paper_default(), &procs);
    let mid = processor_sweep(
        &wf,
        &ExecConfig::paper_default().with_vm_overhead(VmOverhead {
            startup_s: 300.0,
            teardown_s: 60.0,
        }),
        &procs,
    );
    let big = processor_sweep(
        &wf,
        &ExecConfig::paper_default().with_vm_overhead(VmOverhead {
            startup_s: 900.0,
            teardown_s: 60.0,
        }),
        &procs,
    );
    for ((a, b), c) in none.iter().zip(&mid).zip(&big) {
        t.push_row(vec![
            a.processors.to_string(),
            format!("{:.3}", a.report.total_cost().dollars()),
            format!("{:.3}", b.report.total_cost().dollars()),
            format!("{:.3}", c.report.total_cost().dollars()),
            format!("{:.3}", c.report.makespan_hours()),
        ]);
    }
    t
}

/// Extension: batching `k` requests into one DAG on a shared pool versus
/// running them one after another on the same pool — the utilization win
/// the paper's per-request arithmetic leaves on the table.
pub fn batch_vs_sequential(degrees: f64, k: usize, processors: u32) -> Table {
    use mcloud_dag::replicate_workflow;
    let one = canonical(degrees);
    let batch = replicate_workflow(format!("batch{k}"), &one, k).expect("batch builds");
    let cfg = ExecConfig::fixed(processors);
    let single = simulate(&one, &cfg);
    let merged = simulate(&batch, &cfg);
    let mut t = Table::new(vec![
        "plan",
        "makespan_hours",
        "total_cost",
        "utilization_pct",
    ]);
    t.push_row(vec![
        format!("{k} x sequential"),
        format!("{:.3}", single.makespan_hours() * k as f64),
        format!("{:.3}", single.total_cost().dollars() * k as f64),
        format!("{:.1}", single.cpu_utilization * 100.0),
    ]);
    t.push_row(vec![
        "batched DAG".to_string(),
        format!("{:.3}", merged.makespan_hours()),
        format!("{:.3}", merged.total_cost().dollars()),
        format!("{:.1}", merged.cpu_utilization * 100.0),
    ]);
    t
}

/// Extension: the rate crossover the paper hypothesizes — scale the
/// storage price up by `theta` while scaling both transfer prices down by
/// `1/theta`; find the theta where remote I/O and Regular cost the same.
pub fn storage_rate_crossover(degrees: f64) -> Table {
    use mcloud_sweep::find_crossover;
    let wf = canonical(degrees);
    let cost_at = |theta: f64, mode: DataMode| -> f64 {
        let mut cfg = ExecConfig::on_demand(mode);
        cfg.pricing.storage_per_gb_month *= theta;
        cfg.pricing.transfer_in_per_gb /= theta;
        cfg.pricing.transfer_out_per_gb /= theta;
        simulate(&wf, &cfg).total_cost().dollars()
    };
    let diff = |theta: f64| cost_at(theta, DataMode::RemoteIo) - cost_at(theta, DataMode::Regular);
    let theta = find_crossover(1.0, 10_000.0, 0.5, diff);
    let mut t = Table::new(vec!["quantity", "value"]);
    match theta {
        Some(theta) => {
            t.push_row(vec!["crossover_theta".to_string(), format!("{theta:.1}")]);
            t.push_row(vec![
                "storage_rate_at_crossover ($/GB-month)".to_string(),
                format!("{:.2}", 0.15 * theta),
            ]);
            t.push_row(vec![
                "transfer_out_rate_at_crossover ($/GB)".to_string(),
                format!("{:.5}", 0.16 / theta),
            ]);
            t.push_row(vec![
                "remote_io_total_at_crossover".to_string(),
                format!("{:.3}", cost_at(theta, DataMode::RemoteIo)),
            ]);
        }
        None => {
            t.push_row(vec![
                "crossover_theta".to_string(),
                "none in [1, 1e4]".to_string(),
            ]);
        }
    }
    t
}

/// Extension: sensitivity to the link speed the paper fixes at 10 Mbps.
/// On 128 processors the 4-degree run is wire-bound; this sweep shows the
/// paper's ~1 h figure needs roughly a 4x faster link.
pub fn bandwidth_sweep(degrees: f64, processors: u32) -> Table {
    use mcloud_core::Provisioning;
    let wf = canonical(degrees);
    let mut t = Table::new(vec![
        "bandwidth_mbps",
        "runtime_hours",
        "total_cost",
        "wire_share_pct",
    ]);
    let mbps_axis = [5.0, 10.0, 20.0, 40.0, 100.0, 1000.0];
    let bps: Vec<f64> = mbps_axis.iter().map(|m| m * 1e6).collect();
    let base = ExecConfig {
        provisioning: Provisioning::Fixed { processors },
        ..ExecConfig::paper_default()
    };
    for (point, mbps) in mcloud_sweep::bandwidth_sweep_incremental(&wf, &base, &bps)
        .iter()
        .zip(mbps_axis)
    {
        let r = &point.report;
        let wire_s = (r.bytes_in + r.bytes_out) as f64 * 8.0 / point.bandwidth_bps;
        t.push_row(vec![
            format!("{mbps:.0}"),
            format!("{:.3}", r.makespan_hours()),
            format!("{:.3}", r.total_cost().dollars()),
            format!("{:.1}", wire_s / r.makespan.as_secs_f64() * 100.0),
        ]);
    }
    t
}

/// Extension: fixed standing pools versus an auto-scaled pool over a month
/// of bursty traffic — the dynamic version of Question 2's "provisions a
/// certain amount of resources over a period of time".
pub fn autoscale_table() -> Table {
    use mcloud_service::{bursty, simulate_autoscale, AutoScaleConfig};
    let arrivals = bursty(
        0.5,
        720.0,
        1.0,
        &[(120.0, 24.0, 12.0), (480.0, 24.0, 12.0)],
        2008,
    );
    let mut t = Table::new(vec![
        "pool",
        "peak_slots",
        "slot_hours",
        "total_cost",
        "mean_wait_h",
        "max_wait_h",
    ]);
    let base = AutoScaleConfig::default_pool();
    let plans: Vec<(&str, AutoScaleConfig)> = vec![
        (
            "fixed 1 slot",
            AutoScaleConfig {
                min_slots: 1,
                max_slots: 1,
                ..base.clone()
            },
        ),
        (
            "fixed 4 slots",
            AutoScaleConfig {
                min_slots: 4,
                max_slots: 4,
                ..base.clone()
            },
        ),
        (
            "autoscale 1..8",
            AutoScaleConfig {
                min_slots: 1,
                max_slots: 8,
                ..base.clone()
            },
        ),
        (
            "autoscale 0..8",
            AutoScaleConfig {
                min_slots: 0,
                max_slots: 8,
                scale_up_queue: 1,
                ..base
            },
        ),
    ];
    for (label, cfg) in plans {
        let r = simulate_autoscale(&arrivals, &cfg);
        t.push_row(vec![
            label.to_string(),
            r.peak_slots.to_string(),
            format!("{:.0}", r.slot_hours),
            format!("{:.2}", r.total_cost().dollars()),
            format!("{:.2}", r.mean_wait_hours()),
            format!("{:.2}", r.max_wait_hours()),
        ]);
    }
    t
}

/// Extension: reproduction error bars — the headline metrics across many
/// generator seeds (the jitter the synthetic traces carry), per workflow.
pub fn variability_table() -> Table {
    use mcloud_simkit::RunningStats;
    let mut t = Table::new(vec!["workflow", "metric", "mean", "std_dev", "rel_sd_pct"]);
    for degrees in CANONICAL_DEGREES {
        let mut cost = RunningStats::new();
        let mut hours = RunningStats::new();
        for seed in 0..20u64 {
            let wf = generate(&MosaicConfig::new(degrees).seed(seed));
            let r = simulate(&wf, &ExecConfig::paper_default());
            cost.push(r.total_cost().dollars());
            hours.push(r.makespan_hours());
        }
        for (metric, stats) in [("total_cost", &cost), ("makespan_hours", &hours)] {
            t.push_row(vec![
                format!("{degrees}deg"),
                metric.to_string(),
                format!("{:.4}", stats.mean()),
                format!("{:.4}", stats.std_dev()),
                format!("{:.2}", stats.std_dev() / stats.mean() * 100.0),
            ]);
        }
    }
    t
}

/// Extension: Question 2b at the service level — monthly totals for a
/// mosaic service at different request volumes, with inputs staged per
/// request versus the 2MASS archive hosted in the cloud.
pub fn hosted_service_month() -> Table {
    let wf = canonical(2.0);
    let staged = simulate(&wf, &ExecConfig::paper_default()).total_cost();
    let hosted = simulate(&wf, &ExecConfig::paper_default().prestaged(true)).total_cost();
    let pricing = Pricing::amazon_2008();
    let hosting = DatasetHosting {
        dataset_bytes: 12_000 * 1_000_000_000,
        request_cost_staged: staged,
        request_cost_hosted: hosted,
    };
    let break_even = hosting.break_even_requests_per_month(&pricing);
    let mut t = Table::new(vec![
        "requests_per_month",
        "monthly_staged",
        "monthly_hosted",
        "winner",
    ]);
    for volume in [100.0, 1_000.0, 10_000.0, break_even, 100_000.0, 500_000.0] {
        let s = hosting.monthly_cost_staged(volume);
        let h = hosting.monthly_cost_hosted(&pricing, volume);
        t.push_row(vec![
            format!("{volume:.0}"),
            format!("{:.0}", s.dollars()),
            format!("{:.0}", h.dollars()),
            if (s.dollars() - h.dollars()).abs() < 1.0 {
                "tie".to_string()
            } else if s < h {
                "stage per request".to_string()
            } else {
                "host the archive".to_string()
            },
        ]);
    }
    t
}

/// Extension: shared serial link versus independent per-direction
/// channels, across modes — quantifies how much the paper's single-link
/// reading of "bandwidth ... fixed at 10 Mbps" matters.
pub fn duplex_ablation(degrees: f64) -> Table {
    let wf = canonical(degrees);
    let mut t = Table::new(vec!["mode", "shared_hours", "duplex_hours", "speedup_pct"]);
    for mode in DataMode::ALL {
        let shared = simulate(&wf, &ExecConfig::on_demand(mode));
        let duplex = simulate(&wf, &ExecConfig::on_demand(mode).with_duplex_link());
        let (a, b) = (shared.makespan_hours(), duplex.makespan_hours());
        t.push_row(vec![
            mode.label().to_string(),
            format!("{a:.4}"),
            format!("{b:.4}"),
            format!("{:.1}", (a - b) / a * 100.0),
        ]);
    }
    t
}

/// Extension: flat (the paper's assumption) versus real tiered 2008 S3
/// egress pricing at campaign scale.
pub fn tiered_egress_table() -> Table {
    use mcloud_cost::RateSchedule;
    let flat = RateSchedule::flat(0.16);
    let tiered = RateSchedule::s3_2008_transfer_out();
    let mosaic_bytes = 2_229_000_000u64; // the paper's 4-degree mosaic
    let mut t = Table::new(vec![
        "plates",
        "egress_tb",
        "flat_cost",
        "tiered_cost",
        "tiered_effective_rate",
    ]);
    for plates in [100u64, 3_900, 39_000, 100_000] {
        let bytes = mosaic_bytes * plates;
        t.push_row(vec![
            plates.to_string(),
            format!("{:.2}", bytes as f64 / 1e12),
            format!("{:.0}", flat.cost(bytes).dollars()),
            format!("{:.0}", tiered.cost(bytes).dollars()),
            format!("{:.4}", tiered.effective_rate(bytes)),
        ]);
    }
    t
}

/// Extension: service-level burst policies over a month of bursty traffic
/// (the paper's motivating "sporadic overloads" scenario, quantified).
pub fn burst_policy_table() -> Table {
    use mcloud_service::{bursty, simulate_service, ServiceConfig};
    let horizon = 30.0 * 24.0;
    let arrivals = bursty(
        0.5,
        horizon,
        1.0,
        &[(120.0, 24.0, 12.0), (480.0, 24.0, 12.0)],
        2008,
    );
    let mut t = Table::new(vec![
        "policy",
        "local",
        "cloud",
        "cloud_cost",
        "mean_wait_h",
        "p95_turnaround_h",
    ]);
    for (label, threshold) in [
        ("never", None),
        ("at_8_waiting", Some(8)),
        ("at_2_waiting", Some(2)),
        ("immediately", Some(0usize)),
    ] {
        let cfg = ServiceConfig {
            local_slots: 2,
            burst_threshold: threshold,
            ..ServiceConfig::default_burst()
        };
        let r = simulate_service(&arrivals, &cfg);
        t.push_row(vec![
            label.to_string(),
            r.local_requests().to_string(),
            r.cloud_requests().to_string(),
            format!("{:.2}", r.cloud_cost.dollars()),
            format!("{:.2}", r.mean_wait_hours()),
            format!("{:.2}", r.turnaround_quantile(0.95)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_matches_paper() {
        let t = fig_processor_sweep(1.0);
        assert_eq!(t.len(), 8); // P = 1..128
        let csv = t.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        let cell = |row: &str, i: usize| -> f64 { row.split(',').nth(i).unwrap().parse().unwrap() };
        // Total cost increases with processors; runtime decreases.
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(cell(last, 5) > cell(first, 5), "total cost must rise");
        assert!(cell(last, 6) < cell(first, 6), "runtime must fall");
        // Paper headline: ~$0.60 and ~5.5 h on 1 proc; ~ $4 and ~0.3 h on 128.
        assert!(
            (cell(first, 5) - 0.60).abs() < 0.10,
            "1-proc cost {}",
            cell(first, 5)
        );
        assert!(
            (cell(first, 6) - 5.5).abs() < 0.5,
            "1-proc hours {}",
            cell(first, 6)
        );
        assert!(
            (cell(last, 5) - 4.0).abs() < 0.8,
            "128-proc cost {}",
            cell(last, 5)
        );
        // Cleanup storage never exceeds regular storage.
        for row in &rows {
            assert!(cell(row, 3) <= cell(row, 2) + 1e-9);
        }
    }

    #[test]
    fn fig7_mode_ordering() {
        let t = fig_mode_metrics(1.0);
        let csv = t.to_csv();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        assert_eq!(rows.len(), 3);
        let get = |mode: &str, col: usize| -> f64 {
            rows.iter().find(|r| r[0] == mode).unwrap()[col]
                .parse()
                .unwrap()
        };
        // Storage space-time: remote-io < cleanup < regular (Fig 7 top).
        assert!(get("remote-io", 1) < get("cleanup", 1));
        assert!(get("cleanup", 1) < get("regular", 1));
        // Transfers: remote-io moves the most, regular == cleanup (middle).
        assert!(get("remote-io", 2) > get("regular", 2));
        assert!((get("regular", 2) - get("cleanup", 2)).abs() < 1e-9);
        assert!(get("remote-io", 3) > get("regular", 3));
        // DM cost: remote-io highest, cleanup lowest (Fig 7 bottom).
        assert!(get("remote-io", 7) > get("regular", 7));
        assert!(get("cleanup", 7) <= get("regular", 7));
    }

    #[test]
    fn fig10_cpu_exceeds_dm_only_for_shared_storage_modes() {
        let t = fig10_cpu_vs_dm();
        assert_eq!(t.len(), 9);
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let cpu: f64 = cells[2].parse().unwrap();
            let dm: f64 = cells[3].parse().unwrap();
            match cells[1] {
                // "CPU cost is slightly higher than the data management
                // costs for the remote I/O execution mode" - same order of
                // magnitude; for regular/cleanup CPU dominates clearly.
                "remote-io" => assert!(dm > 0.3 * cpu && dm < 3.0 * cpu, "{line}"),
                _ => assert!(cpu > 5.0 * dm, "{line}"),
            }
        }
    }

    #[test]
    fn ccr_table_is_in_band() {
        let t = ccr_table();
        for line in t.to_csv().lines().skip(1) {
            let ccr: f64 = line.split(',').nth(1).unwrap().parse().unwrap();
            assert!((0.04..=0.06).contains(&ccr), "{line}");
        }
    }

    #[test]
    fn fig11_costs_rise_with_ccr() {
        let t = fig11_ccr_sweep();
        let csv = t.to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        for w in rows.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert!(b[3] > a[3], "storage cost must rise with CCR");
            assert!(b[5] > a[5], "transfer cost must rise with CCR");
            assert!(b[6] > a[6], "total cost must rise with CCR");
            assert!(b[7] >= a[7] - 1e-9, "runtime must not fall with CCR");
            assert!(b[4] <= b[3] + 1e-12, "cleanup storage <= regular storage");
        }
    }

    #[test]
    fn q2b_break_even_is_tens_of_thousands() {
        let t = q2b_hosting();
        let csv = t.to_csv();
        let value = |key: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(key) || l.contains(key))
                .unwrap()
                .rsplit(',')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert_eq!(value("2MASS monthly storage"), 1800.0);
        assert_eq!(value("one-time ingest"), 1200.0);
        // Paper got 18,000 with a $0.10 saving; our simulated saving is
        // smaller (~$0.034), so the break-even is larger - same order.
        let be = value("break-even requests/month");
        assert!((10_000.0..200_000.0).contains(&be), "break-even {be}");
    }

    #[test]
    fn q3_matches_paper_magnitudes() {
        let t = q3_whole_sky();
        let csv = t.to_csv();
        let value = |key: &str| -> f64 {
            csv.lines()
                .find(|l| l.contains(key))
                .unwrap()
                .rsplit(',')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        // Paper: $34,632 staged / ~$34,125 hosted.
        let staged = value("whole sky, 3900 plates, staged");
        let hosted = value("whole sky, 3900 plates, hosted");
        assert!((30_000.0..40_000.0).contains(&staged), "staged {staged}");
        assert!(hosted < staged);
        // Paper: 21.52 / 24.25 / 25.12 months.
        for (deg, months) in [(1.0, 21.52), (2.0, 24.25), (4.0, 25.12)] {
            let got = value(&format!("{deg}deg mosaic archival"));
            assert!(
                (got - months).abs() / months < 0.15,
                "{deg}deg: {got} vs {months}"
            );
        }
    }

    #[test]
    fn granularity_ablation_shows_overcharge() {
        let t = granularity_ablation(1.0);
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<f64> = line.split(',').map(|c| c.parse().unwrap()).collect();
            assert!(cells[2] >= cells[1] - 1e-9, "hourly >= exact: {line}");
            assert!(cells[3] >= -1e-9);
        }
    }

    #[test]
    fn pareto_marks_extremes() {
        let t = pareto_table(1.0);
        let csv = t.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        // The cheapest plan (1 proc) is always on the frontier.
        assert!(rows.first().unwrap().ends_with("yes"));
        // Some minimum-runtime row is on the frontier. (128 processors can
        // legitimately be dominated: past the link bottleneck, extra nodes
        // only add cost - exactly the paper's over-provisioning lesson.)
        let time = |row: &str| -> f64 { row.split(',').nth(2).unwrap().parse().unwrap() };
        let min_time = rows.iter().map(|r| time(r)).fold(f64::INFINITY, f64::min);
        assert!(rows
            .iter()
            .any(|r| (time(r) - min_time).abs() < 1e-9 && r.ends_with("yes")));
    }

    #[test]
    fn baseline_reports_are_consistent() {
        let r = baseline_report(1.0);
        assert!(r.total_cost().dollars() > 0.5 && r.total_cost().dollars() < 0.8);
    }

    #[test]
    fn policy_ablation_gap_is_small_on_montage() {
        let t = policy_ablation(1.0);
        for line in t.to_csv().lines().skip(1) {
            let gap: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!(gap.abs() < 15.0, "policy gap too large: {line}");
        }
    }

    #[test]
    fn failure_sweep_is_monotone_in_cost() {
        let t = failure_sweep(1.0);
        let costs: Vec<f64> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(3).unwrap().parse().unwrap())
            .collect();
        for w in costs.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{costs:?}");
        }
        // 30% failures cost dramatically more than none.
        assert!(costs.last().unwrap() > &(costs[0] * 1.2));
    }

    #[test]
    fn fault_reliability_table_is_deterministic_and_charges_for_waste() {
        let t = fault_reliability_table();
        let csv = t.to_csv();
        // Deterministic: the whole table reproduces byte for byte.
        assert_eq!(csv, fault_reliability_table().to_csv());
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        assert_eq!(rows.len(), 6);
        // The zero-rate point injects task faults nowhere, but the held
        // transfer-fault/preemption axes may still charge waste; rising
        // task rates can only add failed attempts.
        let failed: Vec<u64> = rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(failed.last().unwrap() > &failed[0], "{failed:?}");
        let wasted: Vec<f64> = rows.iter().map(|r| r[9].parse().unwrap()).collect();
        assert!(wasted.last().unwrap() > &0.0);
        // Every row reports whether the retry budget survived the DAG.
        for r in &rows {
            assert!(r[6] == "yes" || r[6] == "no", "{r:?}");
        }
    }

    #[test]
    fn vm_overhead_punishes_wide_provisioning() {
        let t = vm_overhead_table(1.0);
        let rows: Vec<Vec<f64>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        for r in &rows {
            assert!(r[2] >= r[1] - 1e-9, "boot overhead must not reduce cost");
            assert!(r[3] >= r[2] - 1e-9);
        }
        // The absolute penalty grows with processor count.
        let first_penalty = rows[0][3] - rows[0][1];
        let last_penalty = rows.last().unwrap()[3] - rows.last().unwrap()[1];
        assert!(last_penalty > first_penalty * 10.0);
    }

    #[test]
    fn batching_beats_sequential_on_shared_pool() {
        let t = batch_vs_sequential(0.5, 4, 16);
        let rows: Vec<Vec<String>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        let seq_hours: f64 = rows[0][1].parse().unwrap();
        let batch_hours: f64 = rows[1][1].parse().unwrap();
        let seq_cost: f64 = rows[0][2].parse().unwrap();
        let batch_cost: f64 = rows[1][2].parse().unwrap();
        assert!(batch_hours < seq_hours, "batching must pipeline");
        assert!(batch_cost < seq_cost, "higher utilization must cut cost");
    }

    #[test]
    fn storage_crossover_exists_and_is_large() {
        let t = storage_rate_crossover(1.0);
        let csv = t.to_csv();
        assert!(
            !csv.contains("none in"),
            "a crossover must exist once storage dwarfs transfer: {csv}"
        );
        let theta: f64 = csv
            .lines()
            .find(|l| l.starts_with("crossover_theta"))
            .unwrap()
            .rsplit(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        // At 2008 rates remote I/O loses by ~15x on DM cost; the flip
        // needs a substantially distorted rate card.
        assert!(theta > 2.0, "theta {theta}");
    }

    #[test]
    fn fast_links_recover_the_papers_128proc_point() {
        // At 10 Mbps the 4-degree/128-processor run is wire-bound and
        // costs ~$21; with the link bottleneck removed it converges to the
        // paper's printed $13.92 / ~1 h — strong evidence the paper's
        // figure reflects an unconstrained link at that point.
        let t = bandwidth_sweep(4.0, 128);
        let rows: Vec<Vec<f64>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        for w in rows.windows(2) {
            assert!(w[1][1] <= w[0][1] + 1e-9, "runtime monotone in bandwidth");
            assert!(w[1][2] <= w[0][2] + 1e-9, "cost monotone in bandwidth");
        }
        let fastest = rows.last().unwrap();
        assert!(
            (fastest[1] - 1.05).abs() < 0.15,
            "runtime -> ~1 h: {}",
            fastest[1]
        );
        assert!(
            (fastest[2] - 13.92).abs() < 1.5,
            "cost -> ~$14: {}",
            fastest[2]
        );
    }

    #[test]
    fn autoscaling_dominates_fixed_pools() {
        let t = autoscale_table();
        let rows: Vec<Vec<String>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        let cost = |i: usize| -> f64 { rows[i][3].parse().unwrap() };
        let max_wait = |i: usize| -> f64 { rows[i][5].parse().unwrap() };
        // Rows: fixed1, fixed4, auto 1..8, auto 0..8.
        assert!(max_wait(0) > 10.0, "one slot must drown in the burst");
        assert!(
            cost(2) < cost(1),
            "autoscaling beats the big fixed pool on cost"
        );
        assert!(max_wait(2) < max_wait(1) + 1.0, "without losing latency");
        assert!(cost(3) < cost(2), "scale-to-zero is cheapest");
    }

    #[test]
    fn seed_variability_is_small() {
        let t = variability_table();
        for line in t.to_csv().lines().skip(1) {
            let rel: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!(rel < 3.0, "relative sd too large: {line}");
        }
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn q2b_service_has_a_volume_crossover() {
        let t = hosted_service_month();
        let csv = t.to_csv();
        assert!(csv.contains("stage per request"));
        assert!(csv.contains("host the archive"));
        assert!(csv.contains("tie"));
    }

    #[test]
    fn duplex_only_helps_remote_io() {
        let t = duplex_ablation(1.0);
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let speedup: f64 = cells[3].parse().unwrap();
            match cells[0] {
                "remote-io" => assert!(speedup > 5.0, "{line}"),
                _ => assert!(speedup.abs() < 1.0, "{line}"),
            }
        }
    }

    #[test]
    fn tiered_pricing_discounts_at_scale() {
        let t = tiered_egress_table();
        let rows: Vec<Vec<f64>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        // Small campaigns: tiered ($0.17) is pricier than the paper's flat
        // $0.16; huge campaigns: tiered wins on volume discounts.
        assert!(rows[0][3] > rows[0][2]);
        let last = rows.last().unwrap();
        assert!(last[3] < last[2]);
        // Effective rate declines monotonically.
        for w in rows.windows(2) {
            assert!(w[1][4] <= w[0][4] + 1e-12);
        }
    }

    #[test]
    fn burst_policies_trade_money_for_latency() {
        let t = burst_policy_table();
        let rows: Vec<Vec<String>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        assert_eq!(rows.len(), 4);
        let cost = |i: usize| -> f64 { rows[i][3].parse().unwrap() };
        let p95 = |i: usize| -> f64 { rows[i][5].parse().unwrap() };
        // Never-burst is free but slow; immediate burst is the dearest and
        // fastest.
        assert_eq!(cost(0), 0.0);
        assert!(cost(3) > cost(1));
        assert!(p95(0) > p95(3) * 2.0);
    }
}
