//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro all              # everything
//! repro fig4 fig10 q3    # a subset
//! repro --list           # enumerate experiment ids
//! repro bench-json       # (re)write BENCH_baseline.json at the repo root
//! repro bench-json --check BENCH_baseline.json   # CI regression gate
//! ```
//!
//! Each experiment prints its series as an aligned table and writes
//! `results/<id>.csv` at the workspace root. The `bench-json` subcommand
//! instead measures the engine-throughput baseline (see
//! `mcloud_bench::baseline`): `--out <path>` overrides where the JSON is
//! written; `--check <path>` measures and compares against a committed
//! baseline, exiting nonzero on allocation or throughput regressions.

use std::path::PathBuf;
use std::process::ExitCode;

use mcloud_bench::{baseline, experiments as ex, results_dir};
use mcloud_sweep::{LinePlot, Table};

struct Experiment {
    id: &'static str,
    description: &'static str,
    run: fn() -> Table,
    /// Optional SVG renderings of the series (written as `<id><suffix>.svg`).
    plots: Option<PlotFn>,
}

/// Builds named SVG panels from an experiment's table.
type PlotFn = fn(&Table) -> Vec<(&'static str, LinePlot)>;

/// Experiments whose tables are also written as aligned text
/// (`results/<id>.txt`) so the artifact can be diffed byte-for-byte by CI.
const TEXT_IDS: &[&str] = &["faults_1deg"];

/// Cost + runtime pair for Figures 4-6.
fn plots_processor_sweep(t: &Table) -> Vec<(&'static str, LinePlot)> {
    vec![
        ("", plot_processor_costs(t)),
        ("_runtime", plot_processor_runtime(t)),
    ]
}

/// Cost panel for Figure 11.
fn plots_ccr(t: &Table) -> Vec<(&'static str, LinePlot)> {
    vec![("", plot_ccr_costs(t))]
}

/// Figures 4-6 shape: cost series over processors, log-log like the paper.
fn plot_processor_costs(t: &Table) -> LinePlot {
    let x = t.numeric_column("processors").expect("processors column");
    let mut plot = LinePlot::new(
        "Execution costs vs provisioned processors",
        "processors",
        "dollars",
    )
    .with_log_x()
    .with_log_y();
    for (col, label) in [
        ("total_cost", "total"),
        ("cpu_cost", "cpu"),
        ("transfer_cost", "transfer"),
        ("storage_cost", "storage"),
        ("storage_cost_cleanup", "storage (cleanup)"),
    ] {
        let y = t.numeric_column(col).expect(col);
        // Log scale cannot show zeros; clamp to a display floor.
        let pts: Vec<(f64, f64)> = x.iter().zip(&y).map(|(&x, &y)| (x, y.max(1e-5))).collect();
        plot = plot.series(label, pts);
    }
    plot
}

/// Figure 11 shape: cost series over the CCR, log-y.
fn plot_ccr_costs(t: &Table) -> LinePlot {
    let x = t.numeric_column("actual_ccr").expect("actual_ccr column");
    let mut plot = LinePlot::new(
        "Execution costs vs communication-to-computation ratio (8 procs)",
        "CCR",
        "dollars",
    )
    .with_log_x()
    .with_log_y();
    for (col, label) in [
        ("total_cost", "total"),
        ("cpu_cost", "cpu"),
        ("transfer_cost", "transfer"),
        ("storage_cost", "storage"),
        ("storage_cost_cleanup", "storage (cleanup)"),
    ] {
        let y = t.numeric_column(col).expect(col);
        let pts: Vec<(f64, f64)> = x.iter().zip(&y).map(|(&x, &y)| (x, y.max(1e-5))).collect();
        plot = plot.series(label, pts);
    }
    plot
}

/// Runtime-vs-processors companion curve (bottom panels of Figures 4-6).
fn plot_processor_runtime(t: &Table) -> LinePlot {
    let x = t.numeric_column("processors").expect("processors column");
    let y = t
        .numeric_column("runtime_hours")
        .expect("runtime_hours column");
    LinePlot::new(
        "Execution time vs provisioned processors",
        "processors",
        "hours",
    )
    .with_log_x()
    .series("makespan", x.into_iter().zip(y).collect())
}

const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "fig4",
        description: "Montage 1 deg: costs & runtime vs provisioned processors",
        plots: Some(plots_processor_sweep),
        run: || ex::fig_processor_sweep(1.0),
    },
    Experiment {
        id: "fig5",
        description: "Montage 2 deg: costs & runtime vs provisioned processors",
        plots: Some(plots_processor_sweep),
        run: || ex::fig_processor_sweep(2.0),
    },
    Experiment {
        id: "fig6",
        description: "Montage 4 deg: costs & runtime vs provisioned processors",
        plots: Some(plots_processor_sweep),
        run: || ex::fig_processor_sweep(4.0),
    },
    Experiment {
        id: "fig7",
        description: "Montage 1 deg: data-management metrics per mode",
        plots: None,
        run: || ex::fig_mode_metrics(1.0),
    },
    Experiment {
        id: "fig8",
        description: "Montage 2 deg: data-management metrics per mode",
        plots: None,
        run: || ex::fig_mode_metrics(2.0),
    },
    Experiment {
        id: "fig9",
        description: "Montage 4 deg: data-management metrics per mode",
        plots: None,
        run: || ex::fig_mode_metrics(4.0),
    },
    Experiment {
        id: "fig10",
        description: "CPU vs data-management cost, all workflows x modes",
        plots: None,
        run: ex::fig10_cpu_vs_dm,
    },
    Experiment {
        id: "ccr",
        description: "CCR of the three Montage workflows at 10 Mbps",
        plots: None,
        run: ex::ccr_table,
    },
    Experiment {
        id: "fig11",
        description: "Montage 1 deg on 8 procs: costs vs CCR",
        plots: Some(plots_ccr),
        run: ex::fig11_ccr_sweep,
    },
    Experiment {
        id: "q2b",
        description: "2MASS hosting economics (break-even requests/month)",
        plots: None,
        run: ex::q2b_hosting,
    },
    Experiment {
        id: "q3",
        description: "Whole-sky campaign cost & mosaic archival break-evens",
        plots: None,
        run: ex::q3_whole_sky,
    },
    Experiment {
        id: "granularity",
        description: "EXTENSION: hourly vs per-second billing overcharge",
        plots: None,
        run: || ex::granularity_ablation(1.0),
    },
    Experiment {
        id: "pareto",
        description: "EXTENSION: cost/makespan Pareto frontier, 4 deg",
        plots: None,
        run: || ex::pareto_table(4.0),
    },
    Experiment {
        id: "policy",
        description: "EXTENSION: FIFO vs critical-path-first scheduling, 1 deg",
        plots: None,
        run: || ex::policy_ablation(1.0),
    },
    Experiment {
        id: "failures",
        description: "EXTENSION: cost/turnaround vs task failure rate, 1 deg",
        plots: None,
        run: || ex::failure_sweep(1.0),
    },
    Experiment {
        id: "faults_1deg",
        description: "EXTENSION: seeded fault injection under bounded retry, 1 deg",
        plots: None,
        run: ex::fault_reliability_table,
    },
    Experiment {
        id: "vm",
        description: "EXTENSION: VM boot overhead vs provisioning level, 1 deg",
        plots: None,
        run: || ex::vm_overhead_table(1.0),
    },
    Experiment {
        id: "batch",
        description: "EXTENSION: batched DAG vs sequential requests on 16 procs",
        plots: None,
        run: || ex::batch_vs_sequential(1.0, 4, 16),
    },
    Experiment {
        id: "crossover",
        description: "EXTENSION: rate crossover where remote I/O becomes cheapest",
        plots: None,
        run: || ex::storage_rate_crossover(1.0),
    },
    Experiment {
        id: "service",
        description: "EXTENSION: cloud-burst policies over a month of bursty traffic",
        plots: None,
        run: ex::burst_policy_table,
    },
    Experiment {
        id: "tiered",
        description: "EXTENSION: flat vs tiered 2008 S3 egress pricing at scale",
        plots: None,
        run: ex::tiered_egress_table,
    },
    Experiment {
        id: "q2b_service",
        description: "EXTENSION: Q2b at service level - monthly totals by volume",
        plots: None,
        run: ex::hosted_service_month,
    },
    Experiment {
        id: "bandwidth",
        description: "EXTENSION: 4-deg on 128 procs vs link speed (wire-bound?)",
        plots: None,
        run: || ex::bandwidth_sweep(4.0, 128),
    },
    Experiment {
        id: "autoscale",
        description: "EXTENSION: fixed vs auto-scaled standing pools, bursty month",
        plots: None,
        run: ex::autoscale_table,
    },
    Experiment {
        id: "variability",
        description: "EXTENSION: reproduction error bars across 20 generator seeds",
        plots: None,
        run: ex::variability_table,
    },
    Experiment {
        id: "duplex",
        description: "EXTENSION: shared vs per-direction link channels, by mode",
        plots: None,
        run: || ex::duplex_ablation(1.0),
    },
];

/// Per-workload timing budget for `bench-json`, overridable the same way
/// as the stopwatch benches (`MCLOUD_BENCH_TARGET_MS`).
fn bench_budget_ms() -> u64 {
    std::env::var("MCLOUD_BENCH_TARGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// `repro bench-json [--out <path>] [--check <path>]`.
fn bench_json(args: &[String]) -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut check: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" | "--check" => {
                let Some(path) = it.next() else {
                    eprintln!("{a} requires a path argument");
                    return ExitCode::FAILURE;
                };
                let slot = if a == "--out" { &mut out } else { &mut check };
                *slot = Some(PathBuf::from(path));
            }
            other => {
                eprintln!("unknown bench-json argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    let budget = bench_budget_ms();
    println!(
        "measuring engine baseline ({budget} ms/workload budget, {} worker lanes)...",
        mcloud_simkit::configured_lanes()
    );
    let measured = baseline::measure_all(budget, |m| {
        println!(
            "  {:<18} {:>6} tasks  {:>8} events  {:>8} allocs/sim ({:.1}/task)  \
             {:>3} warm allocs/sim  {:>10.0} events/s  {:>9.1} batch sims/s",
            m.name,
            m.tasks,
            m.events,
            m.allocs_per_sim,
            m.allocs_per_task(),
            m.batch_allocs_per_sim,
            m.events_per_sec,
            m.batch_sims_per_sec,
        );
    });

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(err) => {
                eprintln!("failed to read {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let committed = match baseline::from_json(&text) {
            Ok(b) => b,
            Err(err) => {
                eprintln!("failed to parse {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let violations = baseline::compare(&measured, &committed);
        // The delta table prints on *both* verdicts: a green CI log should
        // still show how far each metric sits from its committed value, so
        // drift is visible before it crosses a tolerance.
        if violations.is_empty() {
            println!("per-row deltas (committed -> current):");
            for line in baseline::delta_summary(&measured, &committed) {
                println!("  {line}");
            }
            println!(
                "baseline check passed against {} ({} workloads)",
                path.display(),
                committed.workloads.len()
            );
            return ExitCode::SUCCESS;
        }
        eprintln!("baseline check FAILED against {}:", path.display());
        for v in &violations {
            eprintln!("  - {v}");
        }
        eprintln!();
        eprintln!("per-row deltas (committed -> current):");
        for line in baseline::delta_summary(&measured, &committed) {
            eprintln!("  {line}");
        }
        return ExitCode::FAILURE;
    }

    let path = out.unwrap_or_else(|| results_dir().join("..").join("BENCH_baseline.json"));
    match std::fs::write(&path, baseline::to_json(&measured)) {
        Ok(()) => {
            println!("   -> wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("failed to write {}: {err}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "bench-json") {
        return bench_json(&args[1..]);
    }
    if args.iter().any(|a| a == "--list") {
        for e in EXPERIMENTS {
            println!("{:<12} {}", e.id, e.description);
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<&Experiment> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        let mut picked = Vec::new();
        for a in &args {
            match EXPERIMENTS.iter().find(|e| e.id == *a) {
                Some(e) => picked.push(e),
                None => {
                    eprintln!("unknown experiment '{a}'; try --list");
                    return ExitCode::FAILURE;
                }
            }
        }
        picked
    };

    let out_dir = results_dir();
    for e in selected {
        println!("== {} - {}", e.id, e.description);
        let table = (e.run)();
        print!("{}", table.to_ascii());
        let path = out_dir.join(format!("{}.csv", e.id));
        match table.write_csv(&path) {
            Ok(()) => println!("   -> wrote {}", path.display()),
            Err(err) => {
                eprintln!("failed to write {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
        if TEXT_IDS.contains(&e.id) {
            let txt_path = out_dir.join(format!("{}.txt", e.id));
            match std::fs::write(&txt_path, table.to_ascii()) {
                Ok(()) => println!("   -> wrote {}", txt_path.display()),
                Err(err) => {
                    eprintln!("failed to write {}: {err}", txt_path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(plots) = e.plots {
            for (suffix, plot) in plots(&table) {
                let svg_path = out_dir.join(format!("{}{suffix}.svg", e.id));
                match plot.write_svg(&svg_path) {
                    Ok(()) => println!("   -> wrote {}", svg_path.display()),
                    Err(err) => {
                        eprintln!("failed to write {}: {err}", svg_path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}
