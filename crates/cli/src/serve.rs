//! `mcloud serve` — a dependency-free what-if query server.
//!
//! Two transports, one protocol:
//!
//! - **stdio** (the default): length-prefixed JSON frames. Each request
//!   is an ASCII decimal byte count, a newline, then exactly that many
//!   bytes of JSON; each response is framed the same way. EOF ends the
//!   session cleanly.
//! - **HTTP/1.1** (`--listen ADDR`): a hand-rolled single-threaded
//!   accept loop. `POST /simulate|/plan|/profile|/batch` take the same
//!   JSON payloads as stdio (the path supplies the `op`), `GET /metrics`
//!   returns the cache telemetry as Prometheus text exposition.
//!
//! Requests name scenarios with the CLI's own flag vocabulary —
//! `{"op": "simulate", "args": ["--degrees", "1", "--procs", "8"]}` —
//! so anything `mcloud simulate` can price, the server can answer.
//! Results are memoized in the process-wide content-addressed
//! [`ResultCache`](mcloud_cache): a repeated query is a digest lookup
//! (no workflow generation, no simulation), batch misses fan out
//! through the persistent worker pool, and concurrent identical misses
//! coalesce into one simulation. Responses carry no timing or
//! hit/miss information, so a warm answer is byte-identical to a cold
//! one — that equivalence is pinned by the `serve-equivalence` CI job.

use std::collections::HashMap;
use std::io::{BufRead, Read, Write};
use std::net::TcpListener;
use std::path::PathBuf;

use mcloud_cache::{decode_report, encode_report, DEFAULT_BUDGET_BYTES};
use mcloud_core::{
    report_json, simulate, simulate_batch, BatchScratch, Digest, Report, Scenario, ScenarioRecipe,
};
use mcloud_dag::Workflow;
use mcloud_montage::{generate, Band, MosaicConfig};

use crate::args::Args;
use crate::commands::{exec_from, parse_band, wants_help, SIM_FLAGS};
use crate::json::{self, Value};

/// Per-command help text.
const HELP: &str = "\
mcloud serve — answer what-if scenario queries over stdio or HTTP

stdio protocol (default): length-prefixed JSON frames. Each request is
an ASCII decimal byte count, '\\n', then that many bytes of JSON; each
response is framed the same way. EOF ends the session.

requests:
  {\"op\": \"simulate\", \"args\": [\"--degrees\", \"1\", \"--procs\", \"8\"]}
  {\"op\": \"plan\",     \"args\": [\"--slo-p99\", \"7\", \"--format\", \"json\"]}
  {\"op\": \"profile\",  \"args\": [\"--degrees\", \"0.5\", \"--format\", \"json\"]}
  {\"op\": \"batch\",    \"scenarios\": [[...simulate args...], ...]}
  {\"op\": \"metrics\"}

`args` use the matching subcommand's flag vocabulary. Responses are
{\"ok\": true, \"result\": ...} or {\"ok\": false, \"error\": \"...\"}.
Results are memoized in the content-addressed cache: repeated queries
are digest lookups, batch misses run through the worker pool, and warm
answers are byte-identical to cold ones.

flags:
  --listen ADDR        serve HTTP/1.1 on ADDR (e.g. 127.0.0.1:8080):
                       POST /simulate|/plan|/profile|/batch (same JSON
                       bodies; the path is the op), GET /metrics
  --cache-bytes N      in-memory cache budget (default 268435456)
  --cache-dir PATH     persist results to a disk tier at PATH (entries
                       survive across serve processes)

environment:
  MCLOUD_CACHE_BYTES / MCLOUD_CACHE_DIR   same knobs, lower precedence
  MCLOUD_WORKERS       worker lanes for batch misses (results are
                       byte-identical at every setting)";

/// The `mcloud serve` entry point. Returns an empty report string —
/// responses go to the transport, the session summary to stderr.
pub(crate) fn cmd_serve(rest: &[String]) -> Result<String, String> {
    if wants_help(rest) {
        return Ok(HELP.to_string());
    }
    let args = Args::parse(rest, &["listen", "cache-bytes", "cache-dir"])?;
    let budget: u64 = args.get_or("cache-bytes", DEFAULT_BUDGET_BYTES)?;
    let dir = args.get("cache-dir").map(PathBuf::from);
    if args.has("cache-bytes") || args.has("cache-dir") {
        mcloud_cache::configure_global(budget, dir)?;
    }
    match args.get("listen") {
        Some(addr) => {
            let listener =
                TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
            let bound = listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| addr.to_string());
            eprintln!("serving HTTP on {bound}");
            for stream in listener.incoming() {
                let mut stream = stream.map_err(|e| format!("accept failed: {e}"))?;
                // One request per connection; a malformed request only
                // poisons its own connection, never the server.
                if let Err(e) = handle_http(&mut stream) {
                    eprintln!("note: dropped connection: {e}");
                }
            }
            Ok(String::new())
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let served = serve_session(&mut stdin.lock(), &mut stdout.lock())?;
            let c = mcloud_cache::global().counters();
            eprintln!(
                "served {served} requests ({} memory hits, {} disk hits, {} simulated)",
                c.hits_mem, c.hits_disk, c.computes
            );
            Ok(String::new())
        }
    }
}

/// Runs one framed request/response session to EOF; returns the number
/// of requests answered. Factored over `BufRead`/`Write` so tests drive
/// it in-process.
pub(crate) fn serve_session<R: BufRead, W: Write>(
    input: &mut R,
    output: &mut W,
) -> Result<u64, String> {
    let mut served = 0u64;
    while let Some(payload) = read_frame(input)? {
        let response = match handle_request(&payload) {
            Ok(doc) => doc,
            Err(e) => format!("{{\"ok\": false, \"error\": \"{}\"}}\n", json::escape(&e)),
        };
        write!(output, "{}\n{response}", response.len())
            .and_then(|_| output.flush())
            .map_err(|e| format!("writing response: {e}"))?;
        served += 1;
    }
    Ok(served)
}

/// Reads one length-prefixed frame; `None` at clean EOF. Blank lines
/// between frames are tolerated so session files can end with a newline.
fn read_frame<R: BufRead>(input: &mut R) -> Result<Option<String>, String> {
    let mut header = String::new();
    loop {
        header.clear();
        let n = input
            .read_line(&mut header)
            .map_err(|e| format!("reading frame header: {e}"))?;
        if n == 0 {
            return Ok(None);
        }
        if !header.trim().is_empty() {
            break;
        }
    }
    let len: usize = header.trim().parse().map_err(|_| {
        format!(
            "bad frame header '{}' (expected a byte count)",
            header.trim()
        )
    })?;
    let mut payload = vec![0u8; len];
    input
        .read_exact(&mut payload)
        .map_err(|e| format!("reading {len}-byte frame: {e}"))?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| "frame is not UTF-8".to_string())
}

/// Parses and dispatches one request payload.
fn handle_request(payload: &str) -> Result<String, String> {
    let v = json::parse(payload)?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("request needs a string \"op\" member")?;
    dispatch(op, &v)
}

fn dispatch(op: &str, request: &Value) -> Result<String, String> {
    match op {
        "simulate" => op_simulate(&string_args(request)?).map(|doc| wrap_json(&doc)),
        "plan" | "profile" => {
            let mut argv = vec![op.to_string()];
            argv.extend(string_args(request)?);
            crate::commands::run(&argv).map(|out| wrap_output(&out))
        }
        "batch" => op_batch(request),
        "metrics" => Ok(wrap_text(
            &mcloud_cache::global().registry().prometheus_text(),
        )),
        other => Err(format!(
            "unknown op '{other}' (simulate | plan | profile | batch | metrics)"
        )),
    }
}

/// The request's `args` member as owned strings (absent = empty).
fn string_args(request: &Value) -> Result<Vec<String>, String> {
    let Some(args) = request.get("args") else {
        return Ok(Vec::new());
    };
    owned_args(args)
}

fn owned_args(args: &Value) -> Result<Vec<String>, String> {
    args.as_array()
        .ok_or("\"args\" must be an array of strings")?
        .iter()
        .map(|a| {
            a.as_str()
                .map(String::from)
                .ok_or_else(|| "\"args\" must be an array of strings".to_string())
        })
        .collect()
}

/// Embeds an already-JSON document as the `result` member.
fn wrap_json(doc: &str) -> String {
    format!("{{\"ok\": true, \"result\": {}}}\n", doc.trim_end())
}

/// Embeds plain text as a JSON string `result`.
fn wrap_text(text: &str) -> String {
    format!("{{\"ok\": true, \"result\": \"{}\"}}\n", json::escape(text))
}

/// JSON documents pass through inline; anything else is escaped.
fn wrap_output(out: &str) -> String {
    if out.trim_start().starts_with('{') {
        wrap_json(out)
    } else {
        wrap_text(out)
    }
}

/// `simulate` flags the server accepts: everything `mcloud simulate`
/// takes except the file-writing side channels.
fn serve_sim_flags() -> Vec<&'static str> {
    SIM_FLAGS
        .iter()
        .copied()
        .filter(|f| *f != "trace-out" && *f != "trace-format")
        .collect()
}

/// Parses one simulate arg-list into its content-addressed scenario.
fn scenario_from(raw: &[String]) -> Result<Scenario, String> {
    let args = Args::parse(raw, &serve_sim_flags())?;
    let degrees: f64 = args.get_or("degrees", 1.0)?;
    if !(degrees.is_finite() && degrees > 0.0) {
        return Err(format!("--degrees must be positive, got {degrees}"));
    }
    let mut recipe = ScenarioRecipe::new(degrees);
    if let Some(seed) = args.get_parsed::<u64>("seed")? {
        recipe.seed = seed;
    }
    if let Some(region) = args.get("region") {
        recipe.region = region.to_string();
    }
    if let Some(band) = args.get("band") {
        recipe.band = match parse_band(band)? {
            Band::J => "j",
            Band::H => "h",
            Band::K => "k",
        }
        .to_string();
    }
    let mut exec = exec_from(&args)?;
    if let Some(p) = args.get_parsed::<u32>("procs")? {
        exec.provisioning = mcloud_core::Provisioning::Fixed { processors: p };
    }
    exec.validate()?;
    Ok(Scenario { recipe, exec })
}

/// Materializes a recipe's workflow (the expensive step a warm query
/// skips entirely — the cache key is the recipe, not the DAG).
fn generate_recipe(recipe: &ScenarioRecipe) -> Result<Workflow, String> {
    let mut cfg = MosaicConfig::new(recipe.degrees).seed(recipe.seed);
    cfg = cfg.region(&recipe.region);
    cfg = cfg.band(parse_band(&recipe.band)?);
    Ok(generate(&cfg))
}

/// One scenario query: digest → single-flight cache lookup → report
/// JSON. Cold queries generate and simulate; warm queries are a hash
/// probe plus a decode.
fn op_simulate(raw: &[String]) -> Result<String, String> {
    let scenario = scenario_from(raw)?;
    let cache = mcloud_cache::global();
    let bytes = cache.get_or_compute(scenario.digest(), || {
        let wf = generate_recipe(&scenario.recipe)?;
        Ok(encode_report(&simulate(&wf, &scenario.exec)))
    })?;
    let report = decode_report(&bytes).map_err(|e| format!("corrupt cache entry: {e}"))?;
    Ok(report_json(&report))
}

/// Many scenarios in one frame: probe them all, then run the misses —
/// deduplicated, grouped by workflow recipe — through the worker pool
/// via `simulate_batch`. Results come back in request order.
fn op_batch(request: &Value) -> Result<String, String> {
    let scenarios = request
        .get("scenarios")
        .and_then(Value::as_array)
        .ok_or("batch needs a \"scenarios\" array of arg-lists")?;
    let mut keys: Vec<Digest> = Vec::with_capacity(scenarios.len());
    let mut parsed: Vec<Scenario> = Vec::with_capacity(scenarios.len());
    for entry in scenarios {
        let scenario = scenario_from(&owned_args(entry)?)?;
        keys.push(scenario.digest());
        parsed.push(scenario);
    }

    let cache = mcloud_cache::global();
    let mut results: Vec<Option<Report>> = keys
        .iter()
        .map(|&key| cache.get(key).and_then(|bytes| decode_report(&bytes).ok()))
        .collect();

    // Misses, deduplicated by digest and grouped by recipe so each
    // distinct workflow is generated once and its configs run as one
    // pool batch.
    let mut groups: Vec<(ScenarioRecipe, Vec<usize>)> = Vec::new();
    let mut seen: HashMap<Digest, ()> = HashMap::new();
    for i in 0..parsed.len() {
        if results[i].is_some() || seen.contains_key(&keys[i]) {
            continue;
        }
        seen.insert(keys[i], ());
        match groups.iter_mut().find(|(r, _)| *r == parsed[i].recipe) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((parsed[i].recipe.clone(), vec![i])),
        }
    }
    let mut scratch = BatchScratch::new();
    for (recipe, idxs) in groups {
        let wf = generate_recipe(&recipe)?;
        let cfgs: Vec<mcloud_core::ExecConfig> =
            idxs.iter().map(|&i| parsed[i].exec.clone()).collect();
        let fresh = simulate_batch(&wf, &cfgs, &mut scratch);
        for (&i, report) in idxs.iter().zip(fresh) {
            cache.insert(keys[i], encode_report(&report));
            results[i] = Some(report);
        }
    }

    let mut out = String::from("{\"ok\": true, \"results\": [");
    for (i, (slot, &key)) in results.iter_mut().zip(&keys).enumerate() {
        let report = match slot.take() {
            Some(r) => r,
            // A deduplicated duplicate: its twin's entry is now cached.
            None => decode_report(&cache.get(key).ok_or("batch entry vanished")?)
                .map_err(|e| format!("corrupt cache entry: {e}"))?,
        };
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(report_json(&report).trim_end());
    }
    out.push_str("]}\n");
    Ok(out)
}

/// Serves one HTTP/1.1 exchange on an established connection, then
/// closes it. Generic over the stream so tests run it on buffers.
pub(crate) fn handle_http<S: Read + Write>(stream: &mut S) -> Result<(), String> {
    let (head, mut body) = read_http_head(stream)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            return write_http(stream, 400, "text/plain", "bad request line\n");
        }
    };
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    while body.len() < content_length {
        let mut chunk = vec![0u8; content_length - body.len()];
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("reading body: {e}"))?;
        if n == 0 {
            return write_http(stream, 400, "text/plain", "truncated body\n");
        }
        body.extend_from_slice(&chunk[..n]);
    }
    let body = match String::from_utf8(body) {
        Ok(s) => s,
        Err(_) => return write_http(stream, 400, "text/plain", "body is not UTF-8\n"),
    };

    match (method.as_str(), path.as_str()) {
        ("GET", "/metrics") => write_http(
            stream,
            200,
            "text/plain; version=0.0.4",
            &mcloud_cache::global().registry().prometheus_text(),
        ),
        ("POST", "/simulate")
        | ("POST", "/plan")
        | ("POST", "/profile")
        | ("POST", "/batch")
        | ("POST", "/metrics") => {
            let op = &path[1..];
            let outcome = json::parse(if body.trim().is_empty() { "{}" } else { &body })
                .and_then(|request| dispatch(op, &request));
            match outcome {
                Ok(doc) => write_http(stream, 200, "application/json", &doc),
                Err(e) => write_http(
                    stream,
                    400,
                    "application/json",
                    &format!("{{\"ok\": false, \"error\": \"{}\"}}\n", json::escape(&e)),
                ),
            }
        }
        _ => write_http(stream, 404, "text/plain", "not found\n"),
    }
}

/// Reads up to and including the blank line ending the request head;
/// returns (head, any body bytes already consumed).
fn read_http_head<S: Read>(stream: &mut S) -> Result<(String, Vec<u8>), String> {
    const HEAD_CAP: usize = 64 * 1024;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8(buf[..end].to_vec())
                .map_err(|_| "request head is not UTF-8".to_string())?;
            return Ok((head, buf[end + 4..].to_vec()));
        }
        if buf.len() > HEAD_CAP {
            return Err("request head too large".to_string());
        }
        let mut chunk = [0u8; 4096];
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("reading request: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn write_http<S: Write>(
    stream: &mut S,
    status: u16,
    content_type: &str,
    body: &str,
) -> Result<(), String> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .and_then(|_| stream.flush())
    .map_err(|e| format!("writing response: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// Frames a sequence of request payloads for a stdio session.
    fn frames(payloads: &[&str]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            out.extend_from_slice(format!("{}\n{p}", p.len()).as_bytes());
        }
        out
    }

    fn run_session(payloads: &[&str]) -> (u64, String) {
        let mut input = Cursor::new(frames(payloads));
        let mut output = Vec::new();
        let served = serve_session(&mut input, &mut output).expect("session");
        (served, String::from_utf8(output).expect("utf8"))
    }

    #[test]
    fn repeated_queries_are_byte_identical_and_warm() {
        let q = r#"{"op": "simulate", "args": ["--degrees", "0.2", "--procs", "4"]}"#;
        let (served, out) = run_session(&[q, q]);
        assert_eq!(served, 2);
        let (a, b) = out.split_at(out.len() / 2);
        assert_eq!(a, b, "warm response differs from cold");
        assert!(a.contains("\"ok\": true"), "{a}");
        assert!(a.contains("\"schema\": \"mcloud-report/v1\""), "{a}");
    }

    #[test]
    fn session_handles_plan_batch_metrics_and_errors() {
        let (served, out) = run_session(&[
            r#"{"op": "batch", "scenarios": [["--degrees", "0.2", "--procs", "2"], ["--degrees", "0.2", "--procs", "2"]]}"#,
            r#"{"op": "plan", "args": ["--slo-p99", "7", "--rate", "1", "--horizon", "24", "--format", "json"]}"#,
            r#"{"op": "metrics"}"#,
            r#"{"op": "nonsense"}"#,
            r#"not json at all"#,
        ]);
        assert_eq!(served, 5);
        assert!(out.contains("\"results\": ["), "{out}");
        assert!(out.contains("mcloud-plan/v1"), "{out}");
        assert!(out.contains("mcloud_cache_hits_total"), "{out}");
        assert!(out.contains("unknown op 'nonsense'"), "{out}");
        assert!(out.contains("\"ok\": false"), "{out}");
    }

    #[test]
    fn every_response_is_a_wellformed_frame() {
        let (_, out) = run_session(&[
            r#"{"op": "simulate", "args": ["--degrees", "0.2"]}"#,
            r#"{"op": "simulate", "args": ["--bogus", "1"]}"#,
        ]);
        let mut cursor = Cursor::new(out.into_bytes());
        let mut count = 0;
        while let Some(payload) = read_frame(&mut cursor).expect("frame") {
            json::parse(&payload).expect("response payload parses as JSON");
            count += 1;
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn http_routes_simulate_metrics_and_404() {
        // A loopback stream stand-in: reads from `input`, writes to `output`.
        struct Duplex {
            input: Cursor<Vec<u8>>,
            output: Vec<u8>,
        }
        impl Read for Duplex {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.input.read(buf)
            }
        }
        impl Write for Duplex {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.output.write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let post = |path: &str, body: &str| {
            let req = format!(
                "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            let mut s = Duplex {
                input: Cursor::new(req.into_bytes()),
                output: Vec::new(),
            };
            handle_http(&mut s).expect("http");
            String::from_utf8(s.output).expect("utf8")
        };

        let sim = post(
            "/simulate",
            r#"{"args": ["--degrees", "0.2", "--procs", "2"]}"#,
        );
        assert!(sim.starts_with("HTTP/1.1 200 OK\r\n"), "{sim}");
        assert!(sim.contains("\"mcloud-report/v1\""), "{sim}");

        let bad = post("/simulate", r#"{"args": ["--bogus"]}"#);
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

        let mut s = Duplex {
            input: Cursor::new(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n".to_vec()),
            output: Vec::new(),
        };
        handle_http(&mut s).expect("http");
        let metrics = String::from_utf8(s.output).unwrap();
        assert!(metrics.contains("mcloud_cache_misses_total"), "{metrics}");

        let mut s = Duplex {
            input: Cursor::new(b"GET /nope HTTP/1.1\r\n\r\n".to_vec()),
            output: Vec::new(),
        };
        handle_http(&mut s).expect("http");
        assert!(String::from_utf8(s.output)
            .unwrap()
            .starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn scenario_digest_tracks_the_flags() {
        let s = |args: &[&str]| {
            scenario_from(&args.iter().map(|a| a.to_string()).collect::<Vec<_>>())
                .expect("scenario")
                .digest()
        };
        let base = s(&["--degrees", "1", "--procs", "8"]);
        assert_eq!(base, s(&["--degrees", "1", "--procs", "8"]));
        assert_ne!(base, s(&["--degrees", "2", "--procs", "8"]));
        assert_ne!(base, s(&["--degrees", "1", "--procs", "4"]));
        assert_ne!(base, s(&["--degrees", "1", "--procs", "8", "--band", "k"]));
        assert_ne!(base, s(&["--degrees", "1", "--procs", "8", "--seed", "7"]));
        assert_ne!(
            base,
            s(&["--degrees", "1", "--procs", "8", "--fault-rate", "0.01"])
        );
    }
}
