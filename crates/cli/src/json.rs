//! A tiny dependency-free JSON reader/writer for the serve protocol.
//!
//! Parses the full JSON grammar into a [`Value`] tree (objects keep key
//! order) and escapes strings for emission. This stays deliberately
//! small: the serve protocol only ever reads `{"op": ..., "args": [...],
//! "scenarios": [[...]]}` shapes, and everything the server *writes* is
//! composed from the workspace's deterministic hand-rolled emitters.

use std::collections::VecDeque;

/// A parsed JSON value. Numbers are `f64` (the grammar's only numeric
/// type); object members keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, members in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error, as is any grammar violation (with a byte offset).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.at));
    }
    Ok(v)
}

/// JSON-escapes a string body (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.at))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.at)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.at;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.at += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        // \uXXXX surrogate pairs need one escape of lookahead.
        let mut pending: VecDeque<u16> = VecDeque::new();
        loop {
            let flush = |pending: &mut VecDeque<u16>, out: &mut String| -> Result<(), String> {
                if !pending.is_empty() {
                    let units: Vec<u16> = pending.drain(..).collect();
                    out.extend(
                        char::decode_utf16(units)
                            .collect::<Result<Vec<char>, _>>()
                            .map_err(|_| "unpaired surrogate".to_string())?,
                    );
                }
                Ok(())
            };
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    flush(&mut pending, &mut out)?;
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    if esc == b'u' {
                        if self.at + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".to_string());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.at..self.at + 4])
                            .map_err(|_| "bad \\u escape")?;
                        let unit = u16::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        self.at += 4;
                        pending.push_back(unit);
                        continue;
                    }
                    flush(&mut pending, &mut out)?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    flush(&mut pending, &mut out)?;
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = parse(r#"{"op": "simulate", "args": ["--degrees", "1", "--procs", "8"]}"#)
            .expect("parse");
        assert_eq!(v.get("op").and_then(Value::as_str), Some("simulate"));
        let args = v.get("args").and_then(Value::as_array).expect("args");
        assert_eq!(args.len(), 4);
        assert_eq!(args[0].as_str(), Some("--degrees"));
    }

    #[test]
    fn parses_scalars_nesting_and_escapes() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(
            parse(r#""a\nb\t\"c\" é 😀""#).unwrap(),
            Value::String("a\nb\t\"c\" é 😀".to_string())
        );
        let v = parse(r#"{"a": [1, {"b": []}], "c": {}}"#).unwrap();
        assert!(v.get("c").is_some());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            "nul",
            "1 2",
            r#""\q""#,
            r#""\ud800""#,
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let s = "line1\nline2\t\"quoted\" back\\slash\u{0001}";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap(), Value::String(s.to_string()));
    }
}
