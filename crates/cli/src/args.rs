//! A tiny dependency-free flag parser.
//!
//! Supports `--flag value`, `--flag=value`, boolean `--flag`, and
//! repeated flags. Unknown flags are an error, which keeps typos loud.

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, Vec<String>>,
    consumed: std::cell::RefCell<Vec<String>>,
}

impl Args {
    /// Parses raw arguments. `allowed` lists every legal flag name
    /// (without the `--`); anything else is rejected.
    pub fn parse(raw: &[String], allowed: &[&str]) -> Result<Args, String> {
        let mut values: HashMap<String, Vec<String>> = HashMap::new();
        let mut it = raw.iter().peekable();
        while let Some(tok) = it.next() {
            let Some(body) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{tok}'"));
            };
            let (name, inline) = match body.split_once('=') {
                Some((n, v)) => (n.to_string(), Some(v.to_string())),
                None => (body.to_string(), None),
            };
            if !allowed.contains(&name.as_str()) {
                return Err(format!(
                    "unknown flag '--{name}' (expected one of: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            let value = match inline {
                Some(v) => Some(v),
                // A following token that is not itself a flag is this
                // flag's value.
                None => match it.peek() {
                    Some(next) if !next.starts_with("--") => Some(it.next().unwrap().clone()),
                    _ => None,
                },
            };
            values
                .entry(name)
                .or_default()
                .push(value.unwrap_or_default());
        }
        Ok(Args {
            values,
            consumed: Default::default(),
        })
    }

    /// True when the flag appeared (with or without a value).
    pub fn has(&self, name: &str) -> bool {
        self.consumed.borrow_mut().push(name.to_string());
        self.values.contains_key(name)
    }

    /// The flag's last string value, if present and non-empty.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(name.to_string());
        self.values
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
            .filter(|s| !s.is_empty())
    }

    /// All values of a repeatable flag.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.consumed.borrow_mut().push(name.to_string());
        self.values
            .get(name)
            .map(|v| v.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Parses the flag's value with `FromStr`, with a clear error.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(s) => s
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("--{name}: cannot parse '{s}'")),
        }
    }

    /// Parses the flag's value or falls back to a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        Ok(self.get_parsed(name)?.unwrap_or(default))
    }

    /// Requires the flag to be present and parseable.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        self.get_parsed(name)?
            .ok_or_else(|| format!("missing required flag --{name}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    const ALLOWED: &[&str] = &["degrees", "procs", "prestaged", "outage"];

    #[test]
    fn parses_separate_and_inline_values() {
        let a = Args::parse(&raw("--degrees 2 --procs=16"), ALLOWED).unwrap();
        assert_eq!(a.get("degrees"), Some("2"));
        assert_eq!(a.require::<u32>("procs").unwrap(), 16);
    }

    #[test]
    fn boolean_flags() {
        let a = Args::parse(&raw("--prestaged --degrees 1"), ALLOWED).unwrap();
        assert!(a.has("prestaged"));
        assert!(!a.has("outage"));
        assert_eq!(a.get("prestaged"), None); // present, no value
    }

    #[test]
    fn repeated_flags_accumulate() {
        let a = Args::parse(&raw("--outage 10:60 --outage 100:60"), ALLOWED).unwrap();
        assert_eq!(a.get_all("outage"), vec!["10:60", "100:60"]);
    }

    #[test]
    fn rejects_unknown_flags_and_positionals() {
        assert!(Args::parse(&raw("--bogus 1"), ALLOWED)
            .unwrap_err()
            .contains("--bogus"));
        assert!(Args::parse(&raw("stray"), ALLOWED)
            .unwrap_err()
            .contains("positional"));
    }

    #[test]
    fn defaults_and_missing_requirements() {
        let a = Args::parse(&raw("--degrees 4"), ALLOWED).unwrap();
        assert_eq!(a.get_or("procs", 8u32).unwrap(), 8);
        assert!(a.require::<u32>("procs").unwrap_err().contains("--procs"));
    }

    #[test]
    fn parse_errors_name_the_flag() {
        let a = Args::parse(&raw("--procs banana"), ALLOWED).unwrap();
        let err = a.require::<u32>("procs").unwrap_err();
        assert!(err.contains("--procs") && err.contains("banana"));
    }
}
