//! `mcloud` binary entry point. All logic lives in the library.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match mcloud_cli::run(&argv) {
        Ok(report) => {
            // `mcloud serve` writes its responses to the transport and
            // returns an empty report; don't print a stray blank line.
            if !report.is_empty() {
                println!("{report}");
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
