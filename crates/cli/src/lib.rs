//! # mcloud-cli
//!
//! The `mcloud` command-line planner: simulate execution plans, sweep and
//! recommend provisioning, generate DAX workflows, analyze them, run the
//! paper's economics, and simulate service traffic with cloud bursting.
//!
//! All command logic lives in [`run`], a pure function from argv to a
//! report string, so the CLI is fully unit-tested in-process.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod args;
mod commands;
mod json;
mod serve;

pub use args::Args;
pub use commands::{run, USAGE};
