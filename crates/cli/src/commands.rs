//! The `mcloud` subcommands. Every command is a pure function from parsed
//! flags to a report string, so the whole CLI is unit-testable without
//! spawning processes.

use mcloud_core::{
    attribute_profile_costs, incremental_unsupported_reason, profile_json, profile_svg,
    profile_text, profile_trace, simulate, simulate_traced, trace_from_jsonl, trace_to_chrome,
    trace_to_jsonl, DataMode, ExecConfig, FaultModel, RetryPolicy, SchedulePolicy, SweepAxis,
    VmOverhead, FROM_SCRATCH_NOTE,
};
use mcloud_cost::{ArchiveOrRecompute, Campaign, DatasetHosting, Pricing};
use mcloud_dag::{from_dax, to_dax, to_dot, DotStyle, Workflow};
use mcloud_montage::{generate, Band, MosaicConfig};
use mcloud_service::{
    bursty, class_stream, plan_capacity, poisson, simulate_service, simulate_service_stream,
    AdmissionPolicy, FlashCrowd, PlanSpec, RateProfile, RequestClass, ServiceConfig,
};
use mcloud_simkit::{NullSink, WorkerPool};
use mcloud_sweep::{
    cheapest_within_deadline, geometric_processors, pareto_frontier, processor_sweep,
    processor_sweep_incremental, processor_sweep_incremental_progress, processor_sweep_progress,
    CostTimePoint, Table,
};

use crate::args::Args;

/// Top-level usage text.
pub const USAGE: &str = "\
mcloud — cloud cost/performance planner for Montage-style workflows
        (reproduction of Deelman et al., SC 2008)

usage: mcloud <command> [flags]

commands:
  simulate    price one workflow execution plan
  trace       run one plan and export its event trace (JSONL or Chrome)
  profile     attribute a run's time and dollars to phases and task classes
  plan        sweep provisioning levels and recommend one
  sweep       sweep processor counts with kernel telemetry per point
  generate    emit a synthetic Montage workflow as DAX (and DOT)
  info        analyze a DAX workflow file
  economics   archive-vs-recompute and dataset-hosting break-evens
  service     simulate a month of requests with cloud bursting
  autoscale   simulate an auto-scaled standing pool (dynamic Question 2)
  serve       answer what-if scenario queries over stdio or HTTP, with
              content-addressed result caching
  help        this text

run `mcloud <command> --help` for per-command flags.

environment:
  MCLOUD_WORKERS  worker lanes for parallel sweeps (default: all cores;
                  1 = fully inline, zero thread spawns; results are
                  byte-identical at every setting)";

/// Dispatches a command line (without the program name).
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Ok(USAGE.to_string());
    };
    match cmd.as_str() {
        "simulate" => cmd_simulate(rest),
        "trace" => cmd_trace(rest),
        "profile" => cmd_profile(rest),
        "plan" => cmd_plan(rest),
        "sweep" => cmd_sweep(rest),
        "generate" => cmd_generate(rest),
        "info" => cmd_info(rest),
        "economics" => cmd_economics(rest),
        "service" => cmd_service(rest),
        "autoscale" => cmd_autoscale(rest),
        "serve" => crate::serve::cmd_serve(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

pub(crate) fn wants_help(rest: &[String]) -> bool {
    rest.iter().any(|a| a == "--help" || a == "-h")
}

fn parse_mode(s: &str) -> Result<DataMode, String> {
    match s {
        "remote-io" | "remoteio" => Ok(DataMode::RemoteIo),
        "regular" => Ok(DataMode::Regular),
        "cleanup" | "dynamic-cleanup" => Ok(DataMode::DynamicCleanup),
        other => Err(format!(
            "unknown mode '{other}' (remote-io | regular | cleanup)"
        )),
    }
}

pub(crate) fn parse_band(s: &str) -> Result<Band, String> {
    match s {
        "j" | "J" => Ok(Band::J),
        "h" | "H" => Ok(Band::H),
        "k" | "K" => Ok(Band::K),
        other => Err(format!("unknown band '{other}' (j | h | k)")),
    }
}

/// Shared workflow-building flags: `--degrees`, `--seed`, `--region`,
/// `--band`.
fn workflow_from(args: &Args) -> Result<Workflow, String> {
    let degrees: f64 = args.get_or("degrees", 1.0)?;
    if !(degrees.is_finite() && degrees > 0.0) {
        return Err(format!("--degrees must be positive, got {degrees}"));
    }
    let mut cfg = MosaicConfig::new(degrees);
    if let Some(seed) = args.get_parsed::<u64>("seed")? {
        cfg = cfg.seed(seed);
    }
    if let Some(region) = args.get("region") {
        cfg = cfg.region(region);
    }
    if let Some(band) = args.get("band") {
        cfg = cfg.band(parse_band(band)?);
    }
    Ok(generate(&cfg))
}

/// Shared execution flags: mode, bandwidth, prestaged, vm, faults, outages.
pub(crate) fn exec_from(args: &Args) -> Result<ExecConfig, String> {
    let mut cfg = ExecConfig::paper_default();
    if let Some(mode) = args.get("mode") {
        cfg = cfg.mode(parse_mode(mode)?);
    }
    let mbps: f64 = args.get_or("bandwidth-mbps", 10.0)?;
    cfg = cfg.bandwidth(mbps * 1e6);
    if args.has("prestaged") {
        cfg = cfg.prestaged(true);
    }
    if args.has("hourly-billing") {
        cfg = cfg.with_granularity(mcloud_cost::ChargeGranularity::HourlyCpu);
    }
    if args.has("critical-path-first") {
        cfg = cfg.with_policy(SchedulePolicy::CriticalPathFirst);
    }
    let startup: f64 = args.get_or("vm-startup-s", 0.0)?;
    let teardown: f64 = args.get_or("vm-teardown-s", 0.0)?;
    if startup > 0.0 || teardown > 0.0 {
        cfg = cfg.with_vm_overhead(VmOverhead {
            startup_s: startup,
            teardown_s: teardown,
        });
    }
    if let Some(p) = args.get_parsed::<f64>("failure-prob")? {
        cfg = cfg.with_faults(p, args.get_or("failure-seed", 42u64)?);
    }
    // The full fault model; when any axis is enabled it replaces the
    // legacy task-only `--failure-prob` model.
    let fault_rate: f64 = args.get_or("fault-rate", 0.0)?;
    let transfer_fault_rate: f64 = args.get_or("transfer-fault-rate", 0.0)?;
    let mttf: f64 = args.get_or("mttf", 0.0)?;
    if fault_rate > 0.0 || transfer_fault_rate > 0.0 || mttf > 0.0 {
        cfg = cfg.with_fault_model(FaultModel {
            task_failure_prob: fault_rate,
            transfer_failure_prob: transfer_fault_rate,
            proc_mttf_s: mttf,
            seed: args.get_or("fault-seed", 2008u64)?,
        });
    }
    if let Some(n) = args.get_parsed::<u32>("retry-max")? {
        cfg = cfg.with_retry(RetryPolicy::bounded(n));
    }
    for spec in args.get_all("outage") {
        let (start, dur) = spec
            .split_once(':')
            .ok_or_else(|| format!("--outage expects start:duration seconds, got '{spec}'"))?;
        let start: f64 = start
            .parse()
            .map_err(|_| format!("bad outage start '{start}'"))?;
        let dur: f64 = dur
            .parse()
            .map_err(|_| format!("bad outage duration '{dur}'"))?;
        cfg = cfg.with_outage(start, dur);
    }
    Ok(cfg)
}

pub(crate) const SIM_FLAGS: &[&str] = &[
    "degrees",
    "seed",
    "region",
    "band",
    "procs",
    "mode",
    "bandwidth-mbps",
    "prestaged",
    "hourly-billing",
    "critical-path-first",
    "vm-startup-s",
    "vm-teardown-s",
    "failure-prob",
    "failure-seed",
    "fault-rate",
    "transfer-fault-rate",
    "mttf",
    "retry-max",
    "fault-seed",
    "outage",
    "trace-out",
    "trace-format",
];

/// Parses `--trace-format` (jsonl | chrome), defaulting to JSONL.
fn parse_trace_format(args: &Args) -> Result<&'static str, String> {
    match args.get("trace-format").unwrap_or("jsonl") {
        "jsonl" | "json-lines" => Ok("jsonl"),
        "chrome" | "perfetto" => Ok("chrome"),
        other => Err(format!("unknown trace format '{other}' (jsonl | chrome)")),
    }
}

fn cmd_simulate(rest: &[String]) -> Result<String, String> {
    if wants_help(rest) {
        return Ok("\
mcloud simulate — price one workflow execution plan

flags:
  --degrees D            mosaic size (default 1)
  --procs P              fixed provisioning with P processors
                         (omit for on-demand billing)
  --mode M               remote-io | regular | cleanup (default regular)
  --bandwidth-mbps B     link speed (default 10, the paper's)
  --prestaged            inputs already in cloud storage
  --hourly-billing       real 2008 EC2 hour-granular CPU billing
  --critical-path-first  list-schedule by bottom level
  --vm-startup-s S / --vm-teardown-s S
  --failure-prob P [--failure-seed N]
                         legacy task-only faults, unlimited instant retries
  --fault-rate P         per-attempt task failure probability
  --transfer-fault-rate P  per-transfer failure probability
  --mttf S               per-processor mean time to preemption, seconds
  --fault-seed N         seed for all fault draws (default 2008)
  --retry-max N          bound retries per task/transfer with jittered
                         exponential backoff; an exhausted budget aborts
                         the run gracefully with a partial report
  --outage START:DUR     storage outage window (seconds; repeatable)
  --trace-out FILE       also write the event trace here
  --trace-format F       jsonl (default) | chrome
  --profile-out FILE     also write a phase/cost profile report
                         (.json for JSON, anything else for text)
  --metrics-out FILE     also write the run's self-telemetry as Prometheus
                         text exposition (.json for the JSON snapshot);
                         deterministic — byte-identical across runs,
                         machines, and MCLOUD_WORKERS settings
  --seed / --region / --band   workload generator knobs"
            .to_string());
    }
    let mut flags = SIM_FLAGS.to_vec();
    flags.extend(["profile-out", "metrics-out"]);
    let args = Args::parse(rest, &flags)?;
    let wf = workflow_from(&args)?;
    let mut cfg = exec_from(&args)?;
    if let Some(p) = args.get_parsed::<u32>("procs")? {
        cfg.provisioning = mcloud_core::Provisioning::Fixed { processors: p };
    }
    let mut trace_note = String::new();
    let trace_out = args.get("trace-out");
    let profile_out = args.get("profile-out");
    let r = if trace_out.is_some() || profile_out.is_some() {
        let (r, sink) = simulate_traced(&wf, &cfg);
        if let Some(path) = trace_out {
            let format = parse_trace_format(&args)?;
            let doc = match format {
                "chrome" => trace_to_chrome(&wf, sink.events()),
                _ => trace_to_jsonl(&wf, sink.events()),
            };
            std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
            trace_note.push_str(&format!(
                "trace         {} events ({format}) -> {path}\n",
                sink.events().len()
            ));
        }
        if let Some(path) = profile_out {
            let p = profile_trace(&wf, sink.events());
            let attr = attribute_profile_costs(&p, &r, &cfg.pricing);
            let title = profile_title(&wf, &cfg);
            let doc = if path.ends_with(".json") {
                profile_json(&wf, &title, &p, &attr)
            } else {
                profile_text(&wf, &title, &p, &attr)
            };
            std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
            trace_note.push_str(&format!(
                "profile       {} classes -> {path}\n",
                p.classes.len()
            ));
        }
        r
    } else {
        simulate(&wf, &cfg)
    };
    if let Some(path) = args.get("metrics-out") {
        let reg = r.registry();
        let doc = if path.ends_with(".json") {
            reg.json()
        } else {
            reg.prometheus_text()
        };
        std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
        trace_note.push_str(&format!("metrics       {} bytes -> {path}\n", doc.len()));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "workflow      {} ({} tasks, {} files, {:.2} GB data, CCR {:.3})\n",
        wf.name(),
        wf.num_tasks(),
        wf.num_files(),
        wf.total_bytes() as f64 / 1e9,
        wf.ccr_at_link(cfg.bandwidth_bps)
    ));
    out.push_str(&format!(
        "plan          {} / {} @ {:.0} Mbps{}\n",
        cfg.provisioning.label(),
        cfg.mode.label(),
        cfg.bandwidth_bps / 1e6,
        if cfg.prestaged_inputs {
            " (prestaged inputs)"
        } else {
            ""
        }
    ));
    out.push_str(&format!("makespan      {:.3} h\n", r.makespan_hours()));
    out.push_str(&format!(
        "data          in {:.3} GB ({} transfers), out {:.3} GB ({} transfers)\n",
        r.gb_in(),
        r.transfers_in,
        r.gb_out(),
        r.transfers_out
    ));
    out.push_str(&format!(
        "storage       {:.3} GB-hours (peak {:.3} GB)\n",
        r.storage_gb_hours(),
        r.storage_peak_bytes / 1e9
    ));
    if r.failed_attempts > 0 || r.preemptions > 0 || r.transfer_failures > 0 {
        out.push_str(&format!(
            "faults        {} failed attempts over {} executions \
             ({} retries, {} preemptions, {} failed transfers)\n",
            r.failed_attempts, r.task_executions, r.retries, r.preemptions, r.transfer_failures
        ));
        out.push_str(&format!(
            "wasted        {:.1} CPU-s, {:.4} GB in, {:.4} GB out (billed but redone)\n",
            r.wasted_cpu_seconds,
            r.wasted_bytes_in as f64 / 1e9,
            r.wasted_bytes_out as f64 / 1e9
        ));
    }
    if let Some(p) = r.processors {
        out.push_str(&format!(
            "utilization   {:.0}% of {} processors\n",
            r.cpu_utilization * 100.0,
            p
        ));
    }
    out.push_str(&format!(
        "cost          {} (cpu {}, storage {}, in {}, out {})\n",
        r.total_cost(),
        r.costs.cpu,
        r.costs.storage,
        r.costs.transfer_in,
        r.costs.transfer_out
    ));
    out.push_str(&trace_note);
    if !r.completed {
        // A graceful abort is a failure exit (CI greps for this), but the
        // partial report still tells the user what the attempt cost.
        return Err(format!(
            "workflow aborted: retry budget exhausted after {} of {} tasks\n\n\
             partial report:\n{out}",
            r.tasks_completed,
            wf.num_tasks()
        ));
    }
    Ok(out)
}

fn cmd_trace(rest: &[String]) -> Result<String, String> {
    if wants_help(rest) {
        return Ok("\
mcloud trace — run one execution plan and export its event trace

Prints JSON Lines (one event per line) to stdout, or writes to --out.
The chrome format opens in Perfetto (ui.perfetto.dev) or chrome://tracing.

flags:
  --out FILE        write the trace here and print a summary instead
  --format F        jsonl (default) | chrome
  plus all `mcloud simulate` flags (--degrees, --procs, --mode, ...)"
            .to_string());
    }
    let mut flags = SIM_FLAGS.to_vec();
    flags.extend(["out", "format"]);
    let args = Args::parse(rest, &flags)?;
    let wf = workflow_from(&args)?;
    let mut cfg = exec_from(&args)?;
    if let Some(p) = args.get_parsed::<u32>("procs")? {
        cfg.provisioning = mcloud_core::Provisioning::Fixed { processors: p };
    }
    let format = match args.get("format").unwrap_or("jsonl") {
        "jsonl" | "json-lines" => "jsonl",
        "chrome" | "perfetto" => "chrome",
        other => return Err(format!("unknown trace format '{other}' (jsonl | chrome)")),
    };
    let (r, sink) = simulate_traced(&wf, &cfg);
    let doc = match format {
        "chrome" => trace_to_chrome(&wf, sink.events()),
        _ => trace_to_jsonl(&wf, sink.events()),
    };
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
            let c = sink.counters();
            Ok(format!(
                "wrote {} events ({format}, {} bytes) to {path}\n\
                 tasks         {} started, {} ok, {} failed\n\
                 transfers     in {} ({} B), out {} ({} B)\n\
                 storage       {} allocs / {} frees, peak {:.3} GB\n\
                 makespan      {:.3} h, cost {}\n",
                c.events,
                doc.len(),
                c.tasks_started,
                c.tasks_succeeded,
                c.tasks_failed,
                c.transfers_in,
                c.bytes_in,
                c.transfers_out,
                c.bytes_out,
                c.storage_allocs,
                c.storage_frees,
                sink.storage_peak_bytes() / 1e9,
                r.makespan_hours(),
                r.total_cost(),
            ))
        }
        None => Ok(doc),
    }
}

/// Deterministic report header shared by `simulate --profile-out` and
/// `mcloud profile`.
fn profile_title(wf: &Workflow, cfg: &ExecConfig) -> String {
    format!(
        "{} [{} / {}]",
        wf.name(),
        cfg.provisioning.label(),
        cfg.mode.label()
    )
}

fn cmd_profile(rest: &[String]) -> Result<String, String> {
    if wants_help(rest) {
        return Ok("\
mcloud profile — attribute a run's time and dollars to phases and classes

Reconstructs per-task spans from the event trace and reports where each
task class's wall time went (queue-wait, execution, transfer-in/out,
storage-wait), per-level windows, the observed critical path, and which
class spent the dollars on which resource.

flags:
  --trace FILE      profile a previously exported JSONL trace instead of
                    the trace of a fresh run (the plan flags must match
                    the run that produced it)
  --format F        text (default) | json
  --out FILE        write the report here instead of stdout
  --svg FILE        also write a stacked phase-breakdown chart
  plus all `mcloud simulate` flags (--degrees, --procs, --mode, ...)"
            .to_string());
    }
    let mut flags = SIM_FLAGS.to_vec();
    flags.extend(["trace", "format", "out", "svg"]);
    let args = Args::parse(rest, &flags)?;
    let wf = workflow_from(&args)?;
    let mut cfg = exec_from(&args)?;
    if let Some(p) = args.get_parsed::<u32>("procs")? {
        cfg.provisioning = mcloud_core::Provisioning::Fixed { processors: p };
    }
    // The report (billing totals) always comes from a deterministic
    // re-simulation of the configured plan; the events come from the
    // trace file when one is supplied.
    let (report, sink) = simulate_traced(&wf, &cfg);
    let p = match args.get("trace") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let events = trace_from_jsonl(&text).map_err(|e| format!("parsing {path}: {e}"))?;
            profile_trace(&wf, &events)
        }
        None => profile_trace(&wf, sink.events()),
    };
    let attr = attribute_profile_costs(&p, &report, &cfg.pricing);
    let title = profile_title(&wf, &cfg);
    let doc = match args.get("format").unwrap_or("text") {
        "text" => profile_text(&wf, &title, &p, &attr),
        "json" => profile_json(&wf, &title, &p, &attr),
        other => return Err(format!("unknown profile format '{other}' (text | json)")),
    };
    let mut notes = String::new();
    if let Some(path) = args.get("svg") {
        let svg = profile_svg(&title, &p, &attr);
        std::fs::write(path, &svg).map_err(|e| format!("writing {path}: {e}"))?;
        notes.push_str(&format!("wrote phase chart to {path}\n"));
    }
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
            Ok(format!(
                "wrote {} profile ({} bytes) to {path}\n{notes}",
                args.get("format").unwrap_or("text"),
                doc.len()
            ))
        }
        None => Ok(format!("{doc}{notes}")),
    }
}

/// Parses repeatable `--burst start:duration:multiplier` windows.
fn parse_bursts(args: &Args) -> Result<Vec<(f64, f64, f64)>, String> {
    let mut bursts = Vec::new();
    for spec in args.get_all("burst") {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 {
            return Err(format!(
                "--burst expects start:duration:multiplier, got '{spec}'"
            ));
        }
        let parse = |s: &str| -> Result<f64, String> {
            s.parse().map_err(|_| format!("bad burst component '{s}'"))
        };
        bursts.push((parse(parts[0])?, parse(parts[1])?, parse(parts[2])?));
    }
    Ok(bursts)
}

/// Parses repeatable `--class degrees:rate:priority` request classes.
fn parse_classes(args: &Args) -> Result<Vec<RequestClass>, String> {
    let mut classes = Vec::new();
    for spec in args.get_all("class") {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 {
            return Err(format!(
                "--class expects degrees:rate:priority, got '{spec}'"
            ));
        }
        let degrees: f64 = parts[0]
            .parse()
            .map_err(|_| format!("bad class degrees '{}'", parts[0]))?;
        let rate_per_hour: f64 = parts[1]
            .parse()
            .map_err(|_| format!("bad class rate '{}'", parts[1]))?;
        let priority: u8 = parts[2]
            .parse()
            .map_err(|_| format!("bad class priority '{}'", parts[2]))?;
        classes.push(RequestClass {
            rate_per_hour,
            degrees,
            priority,
        });
    }
    Ok(classes)
}

/// Builds a [`RateProfile`] from `--diurnal`, `--seasonal`, and
/// repeatable `--flash start:duration:multiplier` flags.
fn rate_profile_from(args: &Args, base_rate: f64) -> Result<RateProfile, String> {
    let mut profile = RateProfile::constant(base_rate);
    profile.diurnal_amplitude = args.get_or("diurnal", 0.0)?;
    profile.seasonal_amplitude = args.get_or("seasonal", 0.0)?;
    for spec in args.get_all("flash") {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 {
            return Err(format!(
                "--flash expects start:duration:multiplier, got '{spec}'"
            ));
        }
        let parse = |s: &str| -> Result<f64, String> {
            s.parse().map_err(|_| format!("bad flash component '{s}'"))
        };
        profile.flash_crowds.push(FlashCrowd {
            start_hour: parse(parts[0])?,
            duration_hours: parse(parts[1])?,
            multiplier: parse(parts[2])?,
        });
    }
    profile.validate()?;
    Ok(profile)
}

/// Parses `--admission` (reject | deflect | admit-all).
fn parse_admission(args: &Args) -> Result<AdmissionPolicy, String> {
    match args.get("admission") {
        None => Ok(AdmissionPolicy::AdmitAll),
        Some("reject") => Ok(AdmissionPolicy::Reject),
        Some("deflect") => Ok(AdmissionPolicy::Deflect),
        Some("admit-all") | Some("admit") => Ok(AdmissionPolicy::AdmitAll),
        Some(other) => Err(format!(
            "unknown admission policy '{other}' (reject | deflect | admit-all)"
        )),
    }
}

fn cmd_plan(rest: &[String]) -> Result<String, String> {
    if wants_help(rest) {
        return Ok("\
mcloud plan — sweep provisioning levels and recommend one

per-request mode (default):
  --degrees D          mosaic size (default 1)
  --deadline-hours H   turnaround promise (required)
  --requests N         scale the bill to a campaign of N requests
  --max-procs P        top of the geometric sweep (default 128)
  plus all `mcloud simulate` execution flags

capacity mode (--slo-p99 selects it): search auto-scale pool
configurations for the cheapest one meeting a p99 turnaround SLO
against a seeded demand forecast.
  --slo-p99 H          p99 turnaround SLO in hours (required)
  --rate R             total offered requests/hour (default 2)
  --horizon H          campaign length in hours (default 168)
  --seed N             arrival stream seed (default 2008)
  --class D:R:P        request class degrees:rate:priority (repeatable;
                       overrides the default 70/25/5 mix and --rate)
  --diurnal A          diurnal amplitude 0..1 (default 0.3)
  --seasonal A         seasonal amplitude 0..1 (default 0)
  --flash S:D:M        flash crowd start_h:duration_h:multiplier
                       (repeatable)
  --format F           text | json (default text)
  --out PATH           write the plan to a file instead of stdout"
            .to_string());
    }
    if rest.iter().any(|a| a == "--slo-p99") {
        return cmd_plan_capacity(rest);
    }
    let mut flags = SIM_FLAGS.to_vec();
    flags.extend(["deadline-hours", "requests", "max-procs"]);
    let args = Args::parse(rest, &flags)?;
    let wf = workflow_from(&args)?;
    let cfg = exec_from(&args)?;
    let deadline: f64 = args.require("deadline-hours")?;
    let requests: u64 = args.get_or("requests", 1u64)?;
    let max_procs: u32 = args.get_or("max-procs", 128u32)?;

    let points = processor_sweep(&wf, &cfg, &geometric_processors(max_procs));
    let ct: Vec<CostTimePoint> = points
        .iter()
        .map(|p| CostTimePoint {
            cost: p.report.total_cost().dollars(),
            time: p.report.makespan.as_secs_f64(),
        })
        .collect();
    let frontier = pareto_frontier(&ct);

    let mut table = Table::new(vec!["procs", "cost", "hours", "campaign", "frontier"]);
    for (i, p) in points.iter().enumerate() {
        table.push_row(vec![
            p.processors.to_string(),
            format!("{:.3}", p.report.total_cost().dollars()),
            format!("{:.3}", p.report.makespan_hours()),
            format!("{:.2}", p.report.total_cost().dollars() * requests as f64),
            if frontier.contains(&i) {
                "*".into()
            } else {
                String::new()
            },
        ]);
    }
    let mut out = table.to_ascii();
    match cheapest_within_deadline(&ct, deadline * 3600.0) {
        Some(i) => {
            let p = &points[i];
            out.push_str(&format!(
                "\nrecommendation: {} processors — {} per request at {:.2} h \
                 ({} for {requests} requests)\n",
                p.processors,
                p.report.total_cost(),
                p.report.makespan_hours(),
                p.report.total_cost() * requests as f64
            ));
        }
        None => {
            out.push_str(&format!(
                "\nno provisioning level meets a {deadline:.2} h deadline; \
                 fastest is {:.2} h\n",
                points
                    .iter()
                    .map(|p| p.report.makespan_hours())
                    .fold(f64::INFINITY, f64::min)
            ));
        }
    }
    Ok(out)
}

/// The `plan --slo-p99` branch: the service-level capacity planner.
fn cmd_plan_capacity(rest: &[String]) -> Result<String, String> {
    let args = Args::parse(
        rest,
        &[
            "slo-p99", "rate", "horizon", "seed", "class", "diurnal", "seasonal", "flash",
            "format", "out",
        ],
    )?;
    let slo: f64 = args.require("slo-p99")?;
    let rate: f64 = args.get_or("rate", 2.0)?;
    let horizon: f64 = args.get_or("horizon", 168.0)?;
    let mut spec = PlanSpec::new(slo, rate, horizon);
    spec.seed = args.get_or("seed", 2008u64)?;
    let classes = parse_classes(&args)?;
    if !classes.is_empty() {
        spec.classes = classes;
    }
    spec.modulation.diurnal_amplitude = args.get_or("diurnal", 0.3)?;
    spec.modulation.seasonal_amplitude = args.get_or("seasonal", 0.0)?;
    for spec_str in args.get_all("flash") {
        let parts: Vec<&str> = spec_str.split(':').collect();
        if parts.len() != 3 {
            return Err(format!(
                "--flash expects start:duration:multiplier, got '{spec_str}'"
            ));
        }
        let parse = |s: &str| -> Result<f64, String> {
            s.parse().map_err(|_| format!("bad flash component '{s}'"))
        };
        spec.modulation.flash_crowds.push(FlashCrowd {
            start_hour: parse(parts[0])?,
            duration_hours: parse(parts[1])?,
            multiplier: parse(parts[2])?,
        });
    }
    let plan = plan_capacity(&spec)?;
    let doc = match args.get("format").unwrap_or("text") {
        "text" => mcloud_service::plan_text(&spec, &plan),
        "json" => mcloud_service::plan_json(&spec, &plan),
        other => return Err(format!("unknown plan format '{other}' (text | json)")),
    };
    if let Some(path) = args.get("out") {
        std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
        return Ok(format!(
            "wrote capacity plan ({} candidates) to {path}\n",
            plan.candidates.len()
        ));
    }
    Ok(doc)
}

fn cmd_sweep(rest: &[String]) -> Result<String, String> {
    if wants_help(rest) {
        return Ok("\
mcloud sweep — sweep processor counts with kernel telemetry per point

Simulates the workflow at every processor count of a geometric ladder
and tabulates cost, makespan, and the kernel's deterministic
self-telemetry (events processed, calendar-queue pops, peak pending)
for each point. The table is byte-identical at every MCLOUD_WORKERS
setting; --progress adds a live wall-clock heartbeat on stderr.

By default adjacent points are re-simulated incrementally: each run
checkpoints its state and the next forks off the latest checkpoint
its divergence witness proved sound, replaying only the divergent
suffix. The output is byte-for-byte what from-scratch simulation
produces (points the witness cannot bound fall back to t = 0).

flags:
  --degrees D          mosaic size (default 1)
  --max-procs P        top of the geometric ladder (default 128)
  --incremental        checkpoint/fork re-simulation (the default)
  --no-incremental     every point simulates from scratch
  --progress           live `sweep done/total` heartbeat on stderr, plus
                       a worker-lane summary after the sweep (wall-clock;
                       never part of the stdout table)
  plus all `mcloud simulate` execution flags"
            .to_string());
    }
    let mut flags = SIM_FLAGS.to_vec();
    flags.extend(["max-procs", "progress", "incremental", "no-incremental"]);
    let args = Args::parse(rest, &flags)?;
    let wf = workflow_from(&args)?;
    let cfg = exec_from(&args)?;
    let max_procs: u32 = args.get_or("max-procs", 128u32)?;
    let ladder = geometric_processors(max_procs);
    if args.has("incremental") && args.has("no-incremental") {
        return Err("--incremental and --no-incremental are mutually exclusive".to_string());
    }
    let incremental = !args.has("no-incremental");
    if incremental {
        // Fall-back combinations still produce identical output; the note
        // just explains why --incremental buys nothing here. stderr only,
        // so the stdout table stays byte-identical.
        if let Some(reason) = incremental_unsupported_reason(SweepAxis::Processors, &cfg) {
            eprintln!("note: {reason}");
        }
    } else {
        // The same closing phrase as the unsupported-combination notes
        // above (FROM_SCRATCH_NOTE), so every from-scratch path reads
        // the same on stderr.
        eprintln!("note: --no-incremental: {FROM_SCRATCH_NOTE}");
    }

    let points = if args.has("progress") {
        let on_progress = |done: usize, total: usize| {
            eprint!("\rsweep {done}/{total} points");
            if done == total {
                eprintln!();
            }
        };
        let points = if incremental {
            processor_sweep_incremental_progress(&wf, &cfg, &ladder, &on_progress)
        } else {
            processor_sweep_progress(&wf, &cfg, &ladder, &on_progress)
        };
        // Lane summary: wall-clock class, so stderr only — stdout stays
        // byte-identical at every MCLOUD_WORKERS setting.
        if WorkerPool::global_initialized() {
            let pool = WorkerPool::global();
            let uptime_s = pool.uptime_ns() as f64 / 1e9;
            for s in pool.lane_stats() {
                eprintln!(
                    "lane {}: {} sims in {} chunks, {:.3}s busy / {:.3}s up",
                    s.lane,
                    s.items,
                    s.chunks,
                    s.busy_ns as f64 / 1e9,
                    uptime_s
                );
            }
        }
        points
    } else if incremental {
        processor_sweep_incremental(&wf, &cfg, &ladder)
    } else {
        processor_sweep(&wf, &cfg, &ladder)
    };

    let mut table = Table::new(vec![
        "procs",
        "cost",
        "hours",
        "events",
        "pops",
        "peak-pend",
        "grants",
    ]);
    for p in &points {
        let k = &p.report.kernel;
        table.push_row(vec![
            p.processors.to_string(),
            format!("{:.3}", p.report.total_cost().dollars()),
            format!("{:.3}", p.report.makespan_hours()),
            p.report.events_processed.to_string(),
            k.queue.popped.to_string(),
            k.queue.peak_pending.to_string(),
            k.pool_grants.to_string(),
        ]);
    }
    Ok(table.to_ascii())
}

fn cmd_generate(rest: &[String]) -> Result<String, String> {
    if wants_help(rest) {
        return Ok("\
mcloud generate — emit a synthetic Montage workflow

flags:
  --degrees D     mosaic size (default 1)
  --out FILE      write DAX XML here (stdout summary otherwise)
  --dot FILE      also write a Graphviz rendering
  --seed / --region / --band"
            .to_string());
    }
    let args = Args::parse(rest, &["degrees", "seed", "region", "band", "out", "dot"])?;
    let wf = workflow_from(&args)?;
    let dax = to_dax(&wf);
    let mut out = format!(
        "generated {}: {} tasks, {} files, {:.2} GB, depth {}\n",
        wf.name(),
        wf.num_tasks(),
        wf.num_files(),
        wf.total_bytes() as f64 / 1e9,
        wf.depth()
    );
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &dax).map_err(|e| format!("writing {path}: {e}"))?;
            out.push_str(&format!("wrote {} bytes of DAX to {path}\n", dax.len()));
        }
        None => out.push_str(&dax),
    }
    if let Some(path) = args.get("dot") {
        let dot = to_dot(&wf, DotStyle::Tasks);
        std::fs::write(path, &dot).map_err(|e| format!("writing {path}: {e}"))?;
        out.push_str(&format!("wrote DOT to {path}\n"));
    }
    Ok(out)
}

fn cmd_info(rest: &[String]) -> Result<String, String> {
    if wants_help(rest) {
        return Ok(
            "mcloud info — analyze a DAX file\n\nflags:\n  --dax FILE   the workflow description"
                .into(),
        );
    }
    let args = Args::parse(rest, &["dax"])?;
    let path: String = args.require("dax")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let wf = from_dax(&text).map_err(|e| e.to_string())?;
    let stats = wf.stats();
    let mut modules = Table::new(vec!["module", "tasks", "mean_runtime_s", "output_gb"]);
    for m in wf.module_summary() {
        modules.push_row(vec![
            m.module.clone(),
            m.tasks.to_string(),
            format!("{:.1}", m.mean_runtime_s),
            format!("{:.4}", m.output_bytes as f64 / 1e9),
        ]);
    }
    Ok(format!(
        "workflow        {}\n\
         tasks           {}\n\
         files           {}\n\
         depth           {} levels, widths {:?}\n\
         total runtime   {:.1} CPU-hours\n\
         total data      {:.3} GB ({:.3} GB external inputs, {:.3} GB deliverables)\n\
         critical path   {:.1} min\n\
         max parallelism {}\n\
         CCR @ 10 Mbps   {:.4}\n\n{}",
        wf.name(),
        stats.tasks,
        stats.files,
        stats.depth,
        wf.level_widths(),
        stats.total_runtime_s / 3600.0,
        stats.total_bytes as f64 / 1e9,
        stats.external_input_bytes as f64 / 1e9,
        stats.staged_out_bytes as f64 / 1e9,
        stats.critical_path_s / 60.0,
        stats.max_parallelism,
        wf.ccr_at_link(10e6),
        modules.to_ascii(),
    ))
}

fn cmd_economics(rest: &[String]) -> Result<String, String> {
    if wants_help(rest) {
        return Ok("\
mcloud economics — the paper's Question 2b/3 arithmetic

flags:
  --degrees D          mosaic size (default 1)
  --dataset-tb T       hosted dataset size for break-even (default 12, 2MASS)
  --campaign N         plates in a campaign (default 3900, the whole sky)"
            .to_string());
    }
    let args = Args::parse(
        rest,
        &[
            "degrees",
            "seed",
            "region",
            "band",
            "dataset-tb",
            "campaign",
        ],
    )?;
    let wf = workflow_from(&args)?;
    let pricing = Pricing::amazon_2008();
    let staged = simulate(&wf, &ExecConfig::paper_default());
    let hosted = simulate(&wf, &ExecConfig::paper_default().prestaged(true));
    let dataset_tb: f64 = args.get_or("dataset-tb", 12.0)?;
    let dataset_bytes = (dataset_tb * 1e12) as u64;
    let campaign_n: u64 = args.get_or("campaign", 3_900u64)?;

    let mosaic = wf
        .staged_out_files()
        .iter()
        .map(|&f| wf.file(f).clone())
        .find(|f| f.name.ends_with(".fits"))
        .ok_or("workflow delivers no FITS mosaic")?;
    let archive = ArchiveOrRecompute {
        recompute_cost: staged.costs.cpu,
        product_bytes: mosaic.bytes,
    };
    let hosting = DatasetHosting {
        dataset_bytes,
        request_cost_staged: staged.total_cost(),
        request_cost_hosted: hosted.total_cost(),
    };
    let campaign = Campaign {
        requests: campaign_n,
        cost_per_request: staged.total_cost(),
    };

    Ok(format!(
        "request cost             {} staged / {} with hosted inputs\n\
         campaign of {campaign_n}      {}\n\
         mosaic archival          {:.0} MB, break-even {:.1} months of storage\n\
         dataset hosting          {:.1} TB costs {} per month (+{} one-time ingest)\n\
         hosting break-even       {:.0} requests/month\n",
        staged.total_cost(),
        hosted.total_cost(),
        campaign.total(),
        mosaic.bytes as f64 / 1e6,
        archive.break_even_months(&pricing),
        dataset_tb,
        pricing.monthly_storage_cost(dataset_bytes),
        hosting.ingest_cost(&pricing),
        hosting.break_even_requests_per_month(&pricing),
    ))
}

fn cmd_service(rest: &[String]) -> Result<String, String> {
    if wants_help(rest) {
        return Ok("\
mcloud service — simulate request traffic with cloud bursting

flags:
  --rate R             requests/hour base rate (default 0.5)
  --horizon-hours H    simulated span (default 720 = 30 days)
  --degrees D          request size (default 1)
  --slots N            local concurrent request slots (default 2)
  --local-procs P      processors per local slot (default 8)
  --cloud-procs P      processors per cloud burst (default 16)
  --threshold K        burst when K requests wait (omit: never burst)
  --burst S:D:M        overload window: start_h:duration_h:multiplier
                       (repeatable)
  --request-failure-prob P  chance each request run fails and is redone
  --request-retry-max N     retries allowed per request (default 0)
  --fault-seed N       seed for request-failure draws (default 2008)
  --seed N             arrival stream seed (default 2008)

campaign flags (any of these switches to the streaming generator:
arrivals are produced lazily, so year-long 10^6-request campaigns run
in backlog-bounded memory):
  --class D:R:P        request class degrees:rate:priority (repeatable;
                       replaces --rate/--degrees)
  --diurnal A          diurnal rate amplitude 0..1 (default 0)
  --seasonal A         seasonal rate amplitude 0..1 (default 0)
  --flash S:D:M        flash crowd start_h:duration_h:multiplier
                       (repeatable)

admission control (either mode):
  --queue-bound N      reject/deflect arrivals when N requests wait
  --admission P        overflow policy: reject | deflect (required with
                       --queue-bound)
  --metrics-out PATH   write the Prometheus metrics exposition to a file"
            .to_string());
    }
    let args = Args::parse(
        rest,
        &[
            "rate",
            "horizon-hours",
            "degrees",
            "slots",
            "local-procs",
            "cloud-procs",
            "threshold",
            "burst",
            "request-failure-prob",
            "request-retry-max",
            "fault-seed",
            "seed",
            "class",
            "diurnal",
            "seasonal",
            "flash",
            "queue-bound",
            "admission",
            "metrics-out",
        ],
    )?;
    let rate: f64 = args.get_or("rate", 0.5)?;
    let horizon: f64 = args.get_or("horizon-hours", 720.0)?;
    let degrees: f64 = args.get_or("degrees", 1.0)?;
    let seed: u64 = args.get_or("seed", 2008u64)?;
    let bursts = parse_bursts(&args)?;
    let cfg = ServiceConfig {
        local_slots: args.get_or("slots", 2u32)?,
        local_procs_per_request: args.get_or("local-procs", 8u32)?,
        cloud_procs_per_request: args.get_or("cloud-procs", 16u32)?,
        burst_threshold: args.get_parsed::<usize>("threshold")?,
        exec: ExecConfig::paper_default(),
        local_cost_per_slot_hour: mcloud_cost::Money::ZERO,
        request_failure_prob: args.get_or("request-failure-prob", 0.0)?,
        request_retry_max: args.get_or("request-retry-max", 0u32)?,
        fault_seed: args.get_or("fault-seed", 2008u64)?,
        queue_bound: args.get_parsed::<usize>("queue-bound")?,
        admission: parse_admission(&args)?,
    };
    cfg.validate()?;

    let campaign_mode =
        args.has("class") || args.has("diurnal") || args.has("seasonal") || args.has("flash");
    let report = if campaign_mode {
        // Streaming path: arrivals come off a lazy generator, never a
        // materialized Vec — memory stays bounded by the live backlog.
        if !bursts.is_empty() {
            return Err(
                "--burst belongs to the legacy generator; use --flash with campaign flags"
                    .to_string(),
            );
        }
        let classes = if args.has("class") {
            parse_classes(&args)?
        } else {
            vec![RequestClass {
                rate_per_hour: rate,
                degrees,
                priority: 0,
            }]
        };
        let profile = rate_profile_from(&args, 1.0)?; // base ignored per class
        let stream = class_stream(&classes, &profile, horizon, seed);
        simulate_service_stream(stream, &cfg, &mut NullSink, |_| {})
    } else {
        let arrivals = if bursts.is_empty() {
            poisson(rate, horizon, degrees, seed)
        } else {
            bursty(rate, horizon, degrees, &bursts, seed)
        };
        simulate_service(&arrivals, &cfg)
    };

    if let Some(path) = args.get("metrics-out") {
        std::fs::write(path, report.prometheus_text())
            .map_err(|e| format!("writing {path}: {e}"))?;
    }

    let mut out = format!(
        "traffic         {} requests over {horizon:.0} h ({:.2}/h observed)\n\
         served          {} local, {} cloud\n",
        report.offered(),
        report.offered() as f64 / horizon,
        report.local_requests(),
        report.cloud_requests(),
    );
    if cfg.queue_bound.is_some() {
        out.push_str(&format!(
            "admission       {} rejected, {} deflected (queue bound {})\n",
            report.rejected_requests(),
            report.deflected_requests(),
            cfg.queue_bound.unwrap_or(0),
        ));
    }
    out.push_str(&format!(
        "cloud spend     {}\n\
         waits           mean {:.2} h, max {:.2} h\n\
         turnaround      mean {:.2} h, p95 {:.2} h\n",
        report.cloud_cost,
        report.mean_wait_hours(),
        report.max_wait_hours(),
        report.mean_turnaround_hours(),
        report.turnaround_quantile(0.95),
    ));
    if campaign_mode {
        out.push_str(&format!(
            "p99             {:.2} h turnaround\n\
             backlog         mean {:.2}, peak {:.0}\n",
            report.turnaround_quantile(0.99),
            report.backlog_mean,
            report.backlog_peak,
        ));
    }
    Ok(out)
}

fn cmd_autoscale(rest: &[String]) -> Result<String, String> {
    if wants_help(rest) {
        return Ok("\
mcloud autoscale — simulate an auto-scaled standing pool

flags:
  --rate R             requests/hour base rate (default 0.5)
  --horizon-hours H    simulated span (default 720)
  --degrees D          request size (default 1)
  --min-slots N / --max-slots N   pool bounds (default 1..8)
  --scale-up-queue K   rent a slot when K requests wait (default 2)
  --boot-s S           VM boot delay per slot (default 120)
  --procs-per-slot P   processors per slot (default 16)
  --idle-release-s S   grace period before an idle slot above the floor
                       is released (default 0 = immediate)
  --queue-bound N      reject/deflect arrivals when N requests wait
  --admission P        overflow policy: reject | deflect (required with
                       --queue-bound)
  --burst S:D:M        overload window (repeatable)
  --seed N             arrival stream seed (default 2008)"
            .to_string());
    }
    let args = Args::parse(
        rest,
        &[
            "rate",
            "horizon-hours",
            "degrees",
            "min-slots",
            "max-slots",
            "scale-up-queue",
            "boot-s",
            "procs-per-slot",
            "idle-release-s",
            "queue-bound",
            "admission",
            "burst",
            "seed",
        ],
    )?;
    let rate: f64 = args.get_or("rate", 0.5)?;
    let horizon: f64 = args.get_or("horizon-hours", 720.0)?;
    let degrees: f64 = args.get_or("degrees", 1.0)?;
    let seed: u64 = args.get_or("seed", 2008u64)?;
    let bursts = parse_bursts(&args)?;
    let arrivals = if bursts.is_empty() {
        poisson(rate, horizon, degrees, seed)
    } else {
        bursty(rate, horizon, degrees, &bursts, seed)
    };
    use mcloud_service::{simulate_autoscale, AutoScaleConfig};
    let procs: u32 = args.get_or("procs-per-slot", 16u32)?;
    let cfg = AutoScaleConfig {
        min_slots: args.get_or("min-slots", 1u32)?,
        max_slots: args.get_or("max-slots", 8u32)?,
        scale_up_queue: args.get_or("scale-up-queue", 2usize)?,
        boot_s: args.get_or("boot-s", 120.0)?,
        idle_release_s: args.get_or("idle-release-s", 0.0)?,
        procs_per_slot: procs,
        slot_cost_per_hour: mcloud_cost::Money::from_dollars(procs as f64 * 0.10),
        queue_bound: args.get_parsed::<usize>("queue-bound")?,
        admission: parse_admission(&args)?,
        exec: ExecConfig::paper_default(),
    };
    cfg.validate()?;
    let r = simulate_autoscale(&arrivals, &cfg);
    let mut out = format!(
        "traffic        {} requests over {horizon:.0} h\n\
         pool           peak {} slots, {} rentals, {:.0} slot-hours\n\
         spend          {} rental + {} data management = {}\n\
         waits          mean {:.2} h, max {:.2} h\n",
        arrivals.len(),
        r.peak_slots,
        r.rentals,
        r.slot_hours,
        r.rental_cost,
        r.dm_cost,
        r.total_cost(),
        r.mean_wait_hours(),
        r.max_wait_hours(),
    );
    if cfg.queue_bound.is_some() {
        out.push_str(&format!(
            "admission      {} rejected, {} deflected ({} deflect spend)\n",
            r.rejected, r.deflected, r.deflect_cost,
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(cmdline: &str) -> Result<String, String> {
        let argv: Vec<String> = cmdline.split_whitespace().map(String::from).collect();
        run(&argv)
    }

    #[test]
    fn help_paths() {
        assert!(run(&[]).unwrap().contains("usage"));
        assert!(run_str("help").unwrap().contains("commands:"));
        assert!(run_str("simulate --help").unwrap().contains("--degrees"));
        assert!(run_str("plan --help").unwrap().contains("--deadline-hours"));
        assert!(run_str("service --help").unwrap().contains("--burst"));
        assert!(run_str("serve --help").unwrap().contains("--listen"));
        assert!(run_str("bogus").unwrap_err().contains("unknown command"));
    }

    #[test]
    fn from_scratch_notes_share_one_phrase() {
        // The sweep help's --no-incremental line, the stderr note it
        // triggers, and every unsupported-combination fallback reason in
        // core end with the same FROM_SCRATCH_NOTE phrase.
        let help = run_str("sweep --help").unwrap();
        assert!(
            help.contains(&format!("--no-incremental     {FROM_SCRATCH_NOTE}")),
            "{help}"
        );

        let mut traced = ExecConfig::paper_default();
        traced.record_trace = true;
        let reason = incremental_unsupported_reason(SweepAxis::Processors, &traced)
            .expect("tracing forces the from-scratch fallback");
        assert!(reason.ends_with(FROM_SCRATCH_NOTE), "{reason}");

        let mut preempting = ExecConfig::paper_default();
        preempting.faults = Some(FaultModel {
            task_failure_prob: 0.0,
            transfer_failure_prob: 0.0,
            proc_mttf_s: 1000.0,
            seed: 1,
        });
        let reason = incremental_unsupported_reason(SweepAxis::Processors, &preempting)
            .expect("preemption forces the from-scratch fallback");
        assert!(reason.ends_with(FROM_SCRATCH_NOTE), "{reason}");
    }

    #[test]
    fn simulate_default_matches_paper_scale() {
        let out = run_str("simulate --degrees 1 --procs 1").unwrap();
        assert!(out.contains("203 tasks"), "{out}");
        assert!(out.contains("fixed(1)"));
        // ~$0.59 at ~5.5 h (the paper's ~$0.55 / 5.5 h ballpark).
        assert!(out.contains("makespan      5.5"), "{out}");
        assert!(out.contains("$0.5"), "{out}");
    }

    #[test]
    fn simulate_on_demand_and_modes() {
        let out = run_str("simulate --degrees 1 --mode remote-io").unwrap();
        assert!(out.contains("on-demand / remote-io"));
        let err = run_str("simulate --mode sideways").unwrap_err();
        assert!(err.contains("unknown mode"));
    }

    #[test]
    fn simulate_with_extensions() {
        let out = run_str(
            "simulate --degrees 1 --procs 8 --failure-prob 0.1 --outage 10:60 \
             --vm-startup-s 300 --hourly-billing",
        )
        .unwrap();
        assert!(out.contains("failed attempts"), "{out}");
    }

    #[test]
    fn simulate_fault_model_is_deterministic_and_reports_waste() {
        let cmd = "simulate --degrees 1 --procs 8 --fault-rate 0.05 \
                   --transfer-fault-rate 0.05 --mttf 5000 --retry-max 3 --fault-seed 2008";
        let out = run_str(cmd).unwrap();
        assert!(out.contains("failed attempts"), "{out}");
        assert!(out.contains("wasted"), "{out}");
        assert!(out.contains("preemptions"), "{out}");
        // Same seed, same bytes.
        assert_eq!(out, run_str(cmd).unwrap());
    }

    #[test]
    fn simulate_exhausted_retry_budget_exits_with_a_partial_report() {
        let err = run_str(
            "simulate --degrees 1 --procs 8 --fault-rate 0.3 --retry-max 0 --fault-seed 2008",
        )
        .unwrap_err();
        assert!(err.contains("retry budget exhausted"), "{err}");
        assert!(err.contains("partial report:"), "{err}");
        assert!(err.contains("cost"), "{err}");
    }

    #[test]
    fn trace_emits_fault_events_under_the_fault_flags() {
        let out = run_str(
            "trace --degrees 0.5 --procs 4 --fault-rate 0.2 --retry-max 5 --fault-seed 2008",
        )
        .unwrap();
        assert!(out.contains(r#""ev":"task_failed""#), "{out}");
        assert!(out.contains(r#""ev":"task_retried""#), "{out}");
    }

    #[test]
    fn plan_recommends_within_deadline() {
        let out = run_str("plan --degrees 1 --deadline-hours 1 --requests 100").unwrap();
        assert!(out.contains("recommendation:"), "{out}");
        assert!(out.contains("frontier"));
        // An impossible deadline is reported, not panicked.
        let out = run_str("plan --degrees 1 --deadline-hours 0.01").unwrap();
        assert!(out.contains("no provisioning level"), "{out}");
    }

    #[test]
    fn generate_and_info_roundtrip() {
        let dir = std::env::temp_dir().join("mcloud_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let dax = dir.join("wf.dax");
        let dot = dir.join("wf.dot");
        let out = run_str(&format!(
            "generate --degrees 0.5 --out {} --dot {}",
            dax.display(),
            dot.display()
        ))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        assert!(std::fs::read_to_string(&dot)
            .unwrap()
            .starts_with("digraph"));
        let info = run_str(&format!("info --dax {}", dax.display())).unwrap();
        assert!(info.contains("max parallelism"), "{info}");
        assert!(info.contains("CCR"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn info_requires_existing_file() {
        let err = run_str("info --dax /nonexistent/x.dax").unwrap_err();
        assert!(err.contains("reading"));
    }

    #[test]
    fn economics_reports_break_evens() {
        let out = run_str("economics --degrees 1").unwrap();
        assert!(out.contains("break-even"), "{out}");
        assert!(out.contains("$1800.00"), "{out}"); // 12 TB monthly
    }

    #[test]
    fn service_runs_with_bursts() {
        let out = run_str(
            "service --rate 1 --horizon-hours 100 --slots 1 --threshold 1 \
             --burst 10:5:8 --seed 3",
        )
        .unwrap();
        assert!(out.contains("cloud spend"), "{out}");
        assert!(out.contains("p95"));
        // Request-level faults run through the same command.
        let faulty = run_str(
            "service --rate 1 --horizon-hours 100 --slots 1 --threshold 1 \
             --burst 10:5:8 --seed 3 --request-failure-prob 0.4 --request-retry-max 3",
        )
        .unwrap();
        assert!(faulty.contains("p95"), "{faulty}");
    }

    #[test]
    fn trace_prints_jsonl_to_stdout() {
        let out = run_str("trace --degrees 0.5 --procs 2").unwrap();
        assert!(out.lines().count() > 10, "{}", out.lines().count());
        assert!(out.starts_with(r#"{"t_us":"#), "{out}");
        assert!(out.contains(r#""ev":"task_finished""#), "{out}");
        // Same run, same bytes.
        assert_eq!(out, run_str("trace --degrees 0.5 --procs 2").unwrap());
    }

    #[test]
    fn trace_writes_file_and_summarizes() {
        let dir = std::env::temp_dir().join("mcloud_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        let out = run_str(&format!(
            "trace --degrees 0.5 --procs 2 --format chrome --out {}",
            path.display()
        ))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        assert!(out.contains("transfers"), "{out}");
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.starts_with("{\"traceEvents\":["), "{doc}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_rejects_unknown_format() {
        let err = run_str("trace --format yaml").unwrap_err();
        assert!(err.contains("unknown trace format"), "{err}");
    }

    #[test]
    fn simulate_trace_out_flag_writes_trace() {
        let dir = std::env::temp_dir().join("mcloud_cli_simtrace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let out = run_str(&format!(
            "simulate --degrees 0.5 --procs 2 --trace-out {}",
            path.display()
        ))
        .unwrap();
        assert!(out.contains("makespan"), "{out}");
        assert!(out.contains("events (jsonl)"), "{out}");
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.lines().all(|l| l.starts_with(r#"{"t_us":"#)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn profile_prints_deterministic_breakdown() {
        let out = run_str("profile --degrees 0.5 --procs 4 --mode cleanup").unwrap();
        assert!(out.contains("observed critical path"), "{out}");
        assert!(out.contains("mProject"), "{out}");
        assert!(out.contains("billed"), "{out}");
        assert_eq!(
            out,
            run_str("profile --degrees 0.5 --procs 4 --mode cleanup").unwrap()
        );
        let json = run_str("profile --degrees 0.5 --procs 4 --format json").unwrap();
        assert!(json.starts_with(r#"{"workflow":"#), "{json}");
        assert!(json.contains(r#""cost_rows":"#), "{json}");
        let err = run_str("profile --format yaml").unwrap_err();
        assert!(err.contains("unknown profile format"), "{err}");
    }

    #[test]
    fn profile_reads_an_exported_trace_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("mcloud_cli_profile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.jsonl");
        let out_file = dir.join("p.txt");
        let svg = dir.join("p.svg");
        run_str(&format!(
            "trace --degrees 0.5 --procs 2 --mode remote-io --out {}",
            trace.display()
        ))
        .unwrap();
        let summary = run_str(&format!(
            "profile --degrees 0.5 --procs 2 --mode remote-io --trace {} --out {} --svg {}",
            trace.display(),
            out_file.display(),
            svg.display()
        ))
        .unwrap();
        assert!(summary.contains("wrote text profile"), "{summary}");
        assert!(summary.contains("phase chart"), "{summary}");
        // Profiling the exported trace equals profiling the live run.
        let from_file = std::fs::read_to_string(&out_file).unwrap();
        let live = run_str("profile --degrees 0.5 --procs 2 --mode remote-io").unwrap();
        assert!(live.starts_with(&from_file), "file/live profiles diverge");
        let svg_doc = std::fs::read_to_string(&svg).unwrap();
        assert!(svg_doc.starts_with("<svg "), "{svg_doc}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn simulate_profile_out_flag_writes_report() {
        let dir = std::env::temp_dir().join("mcloud_cli_profout_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.json");
        let out = run_str(&format!(
            "simulate --degrees 0.5 --procs 2 --profile-out {}",
            path.display()
        ))
        .unwrap();
        assert!(out.contains("profile       "), "{out}");
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.starts_with(r#"{"workflow":"#), "{doc}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generate_without_out_prints_dax() {
        let out = run_str("generate --degrees 0.5").unwrap();
        assert!(out.contains("<adag"), "{out}");
    }

    #[test]
    fn autoscale_command_reports_pool_and_spend() {
        let out = run_str(
            "autoscale --rate 1 --horizon-hours 48 --min-slots 0 --max-slots 4 \
             --scale-up-queue 1 --seed 5",
        )
        .unwrap();
        assert!(out.contains("peak"), "{out}");
        assert!(out.contains("rental"), "{out}");
        let err = run_str("autoscale --min-slots 4 --max-slots 1").unwrap_err();
        assert!(err.contains("max_slots"), "{err}");
    }
}
