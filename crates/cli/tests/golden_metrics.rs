//! Golden telemetry exposition: the canonical 1-degree fault scenario's
//! `--metrics-out` dump is pinned to the byte. Every metric in it is
//! event-derived ([`MetricClass::Deterministic`]), so the file must be
//! identical across runs, machines, and `MCLOUD_WORKERS` settings — CI
//! re-derives it at several worker counts and byte-compares. Regenerate
//! after an *intentional* telemetry change with `MCLOUD_UPDATE_GOLDEN=1`
//! and review the diff.
//!
//! [`MetricClass::Deterministic`]: mcloud_simkit::MetricClass::Deterministic

use std::path::PathBuf;

use mcloud_cli::run;

/// The fault scenario pinned by the engine's own golden trace
/// (`trace_1deg_faults.jsonl` in mcloud-core): every fault axis enabled,
/// paper-era seed.
const SCENARIO: &str = "--degrees 1 --procs 8 --fault-rate 0.05 \
     --transfer-fault-rate 0.05 --mttf 5000 --retry-max 3 --fault-seed 2008";

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

fn run_str(cmdline: &str) -> Result<String, String> {
    let argv: Vec<String> = cmdline.split_whitespace().map(String::from).collect();
    run(&argv)
}

fn metrics_of(scenario: &str, file: &str) -> String {
    let out = std::env::temp_dir().join(file);
    let summary = run_str(&format!(
        "simulate {scenario} --metrics-out {}",
        out.display()
    ))
    .unwrap();
    assert!(summary.contains("metrics"), "{summary}");
    let doc = std::fs::read_to_string(&out).unwrap();
    std::fs::remove_file(&out).ok();
    doc
}

#[test]
fn golden_metrics_exposition_for_the_fault_scenario() {
    let actual = metrics_of(SCENARIO, "mcloud_golden_metrics.prom");
    let path = golden_path("metrics_faults_1deg.prom");
    if std::env::var_os("MCLOUD_UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with MCLOUD_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            assert_eq!(e, a, "golden metrics diverge at line {}", i + 1);
        }
        assert_eq!(
            expected.lines().count(),
            actual.lines().count(),
            "golden metrics: line count changed"
        );
        panic!("golden metrics differ only in trailing bytes");
    }
}

#[test]
fn metrics_exposition_is_deterministic_across_runs() {
    assert_eq!(
        metrics_of(SCENARIO, "mcloud_metrics_a.prom"),
        metrics_of(SCENARIO, "mcloud_metrics_b.prom")
    );
}

#[test]
fn metrics_out_supports_the_json_snapshot() {
    let doc = metrics_of(SCENARIO, "mcloud_metrics.json");
    assert!(doc.starts_with('{'), "{doc}");
    assert!(doc.contains("\"mcloud_kernel_queue_pops_total\""), "{doc}");
    assert!(doc.contains("\"mcloud_run_makespan_hours\""), "{doc}");
}

#[test]
fn sweep_table_carries_kernel_counters() {
    let out = run_str("sweep --degrees 0.5 --max-procs 8").unwrap();
    assert!(out.contains("pops"), "{out}");
    assert!(out.contains("peak-pend"), "{out}");
    // One ladder row per power of two, header + rule included.
    assert_eq!(out.lines().count(), 2 + 4, "{out}");
    // And the sweep is deterministic.
    assert_eq!(out, run_str("sweep --degrees 0.5 --max-procs 8").unwrap());
}
