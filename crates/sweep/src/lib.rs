//! # mcloud-sweep
//!
//! Parallel experiment harness for the SC'08 reproduction: processor-count
//! sweeps (Figures 4–6), data-management-mode matrices (Figures 7–10), CCR
//! sweeps (Figure 11), Pareto analysis of the cost/makespan trade-off, and
//! table/CSV emitters for the results.
//!
//! Sweeps fan out over the kernel's persistent worker pool (via the
//! batch simulation API, or [`par_map`] for ad-hoc closures); each point
//! is an independent deterministic simulation and results are returned in
//! input order, so parallel and sequential execution produce identical
//! results (asserted in this crate's tests). Set `MCLOUD_WORKERS` to pin
//! the lane count (`MCLOUD_WORKERS=1` forces fully inline execution).
//!
//! ```
//! use mcloud_core::ExecConfig;
//! use mcloud_montage::paper_figure3;
//! use mcloud_sweep::{geometric_processors, processor_sweep};
//!
//! let wf = paper_figure3();
//! let points = processor_sweep(&wf, &ExecConfig::paper_default(), &geometric_processors(4));
//! assert_eq!(points.len(), 3); // P = 1, 2, 4
//! // Cost rises with processors, makespan falls (the paper's trade-off).
//! assert!(points[2].report.total_cost() > points[0].report.total_cost());
//! assert!(points[2].report.makespan < points[0].report.makespan);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cached;
mod crossover;
mod incremental;
mod par;
mod pareto;
mod plot;
mod sweeps;
mod table;

pub use cached::{bandwidth_sweep_cached, fault_rate_sweep_cached, processor_sweep_cached};
pub use crossover::find_crossover;
pub use incremental::{
    bandwidth_sweep_incremental, bandwidth_sweep_incremental_stats, fault_rate_sweep_incremental,
    fault_rate_sweep_incremental_stats, processor_sweep_incremental,
    processor_sweep_incremental_progress, processor_sweep_incremental_stats,
};
pub use par::par_map;
pub use pareto::{cheapest_within_deadline, pareto_frontier, CostTimePoint};
pub use plot::{LinePlot, Series};
pub use sweeps::{
    bandwidth_sweep, ccr_sweep, fault_rate_sweep, geometric_processors, mode_matrix,
    processor_sweep, processor_sweep_progress, scale_to_ccr, BandwidthPoint, CcrPoint,
    FaultRatePoint, ModePoint, ProcessorPoint,
};
pub use table::{fmt_dollars, fmt_hours, Table};
