//! Static SVG line charts for the reproduced figures.
//!
//! The paper's figures are cost/runtime series over processor counts or
//! CCR; this module renders them as self-contained SVG files next to the
//! CSVs. Styling follows the data-viz method's reference palette (a
//! validated categorical order; one axis; thin 2 px lines; recessive
//! grid; text in ink tokens, never series colors; a legend for >= 2
//! series plus direct labels at line ends for <= 4).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Validated categorical palette (reference instance, light mode): blue,
/// aqua, yellow, green, violet, red, magenta, orange — fixed order, never
/// cycled.
const PALETTE: [&str; 8] = [
    "#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7", "#e34948", "#e87ba4", "#eb6834",
];
const SURFACE: &str = "#fcfcfb";
const INK: &str = "#0b0b0b";
const INK_SECONDARY: &str = "#52514e";
const GRID: &str = "#e5e4e0";

/// One line on the plot.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points in data coordinates, in x order.
    pub points: Vec<(f64, f64)>,
}

/// A single-axis line chart.
#[derive(Debug, Clone)]
pub struct LinePlot {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Log-scale the x axis (processor counts are geometric).
    pub log_x: bool,
    /// Log-scale the y axis (the paper's cost plots are log-y).
    pub log_y: bool,
    /// The series, in fixed palette order (max 8).
    pub series: Vec<Series>,
}

const W: f64 = 760.0;
const H: f64 = 440.0;
const ML: f64 = 64.0; // margins
const MR: f64 = 132.0;
const MT: f64 = 44.0;
const MB: f64 = 52.0;

impl LinePlot {
    /// Creates a linear-scale plot.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LinePlot {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            log_x: false,
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Adds a series (at most 8; more must be folded by the caller).
    ///
    /// # Panics
    /// Panics beyond 8 series or on empty/non-finite/non-positive data for
    /// log scales.
    pub fn series(mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        assert!(
            self.series.len() < PALETTE.len(),
            "more than 8 series: fold into 'Other'"
        );
        assert!(!points.is_empty(), "series needs at least one point");
        self.series.push(Series {
            name: name.into(),
            points,
        });
        self
    }

    /// Switches the x axis to log scale.
    pub fn with_log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Switches the y axis to log scale.
    pub fn with_log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    fn tx(&self, x: f64, (lo, hi): (f64, f64)) -> f64 {
        let (x, lo, hi) = if self.log_x {
            (x.log10(), lo.log10(), hi.log10())
        } else {
            (x, lo, hi)
        };
        ML + (x - lo) / (hi - lo).max(f64::MIN_POSITIVE) * (W - ML - MR)
    }

    fn ty(&self, y: f64, (lo, hi): (f64, f64)) -> f64 {
        let (y, lo, hi) = if self.log_y {
            (y.log10(), lo.log10(), hi.log10())
        } else {
            (y, lo, hi)
        };
        H - MB - (y - lo) / (hi - lo).max(f64::MIN_POSITIVE) * (H - MT - MB)
    }

    fn bounds(&self, axis: impl Fn(&(f64, f64)) -> f64, log: bool) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in &self.series {
            for p in &s.points {
                let v = axis(p);
                assert!(v.is_finite(), "non-finite data point");
                if log {
                    assert!(v > 0.0, "log scale needs positive data, got {v}");
                }
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if lo == hi {
            // Degenerate range: pad so the line is visible.
            if log {
                (lo / 2.0, hi * 2.0)
            } else {
                (lo - 0.5, hi + 0.5)
            }
        } else {
            (lo, hi)
        }
    }

    /// Renders the chart as a standalone SVG document.
    ///
    /// # Panics
    /// Panics if the plot has no series.
    pub fn to_svg(&self) -> String {
        assert!(!self.series.is_empty(), "plot needs at least one series");
        let xb = self.bounds(|p| p.0, self.log_x);
        let yb = self.bounds(|p| p.1, self.log_y);

        let mut s = String::with_capacity(8192);
        let _ = write!(
            s,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
             viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\">\n\
             <rect width=\"{W}\" height=\"{H}\" fill=\"{SURFACE}\"/>\n"
        );
        let _ = writeln!(
            s,
            "<text x=\"{ML}\" y=\"24\" font-size=\"15\" fill=\"{INK}\">{}</text>",
            esc(&self.title)
        );

        // Grid + ticks.
        for (value, label) in ticks(yb, self.log_y, 5) {
            let y = self.ty(value, yb);
            let _ = writeln!(
                s,
                "<line x1=\"{ML}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" stroke=\"{GRID}\" stroke-width=\"1\"/>",
                W - MR
            );
            let _ = writeln!(
                s,
                "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" fill=\"{INK_SECONDARY}\" text-anchor=\"end\">{label}</text>",
                ML - 6.0,
                y + 4.0
            );
        }
        for (value, label) in ticks(xb, self.log_x, 7) {
            let x = self.tx(value, xb);
            let _ = writeln!(
                s,
                "<line x1=\"{x:.1}\" y1=\"{MT}\" x2=\"{x:.1}\" y2=\"{:.1}\" stroke=\"{GRID}\" stroke-width=\"1\"/>",
                H - MB
            );
            let _ = writeln!(
                s,
                "<text x=\"{x:.1}\" y=\"{:.1}\" font-size=\"11\" fill=\"{INK_SECONDARY}\" text-anchor=\"middle\">{label}</text>",
                H - MB + 16.0
            );
        }
        // Axis labels.
        let _ = writeln!(
            s,
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"12\" fill=\"{INK_SECONDARY}\" text-anchor=\"middle\">{}</text>",
            ML + (W - ML - MR) / 2.0,
            H - 12.0,
            esc(&self.x_label)
        );
        let _ = writeln!(
            s,
            "<text x=\"16\" y=\"{:.1}\" font-size=\"12\" fill=\"{INK_SECONDARY}\" \
             transform=\"rotate(-90 16 {:.1})\" text-anchor=\"middle\">{}</text>",
            MT + (H - MT - MB) / 2.0,
            MT + (H - MT - MB) / 2.0,
            esc(&self.y_label)
        );

        // Series lines + end labels (direct labels for <= 4 series).
        let direct_labels = self.series.len() <= 4;
        for (i, series) in self.series.iter().enumerate() {
            let color = PALETTE[i];
            let path: Vec<String> = series
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", self.tx(x, xb), self.ty(y, yb)))
                .collect();
            let _ = writeln!(
                s,
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>",
                path.join(" ")
            );
            for &(x, y) in &series.points {
                let _ = writeln!(
                    s,
                    "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"{color}\" stroke=\"{SURFACE}\" stroke-width=\"2\"/>",
                    self.tx(x, xb),
                    self.ty(y, yb)
                );
            }
            if direct_labels {
                let &(x, y) = series.points.last().unwrap();
                let _ = writeln!(
                    s,
                    "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" fill=\"{INK}\">{}</text>",
                    self.tx(x, xb) + 8.0,
                    self.ty(y, yb) + 4.0,
                    esc(&series.name)
                );
            }
        }

        // Legend (always, for >= 2 series).
        if self.series.len() >= 2 {
            for (i, series) in self.series.iter().enumerate() {
                let y = MT + 8.0 + i as f64 * 18.0;
                let x = W - MR + 14.0;
                let _ = writeln!(
                    s,
                    "<rect x=\"{x:.1}\" y=\"{:.1}\" width=\"10\" height=\"10\" rx=\"2\" fill=\"{}\"/>",
                    y - 9.0,
                    PALETTE[i]
                );
                let _ = writeln!(
                    s,
                    "<text x=\"{:.1}\" y=\"{y:.1}\" font-size=\"11\" fill=\"{INK}\">{}</text>",
                    x + 15.0,
                    esc(&series.name)
                );
            }
        }
        s.push_str("</svg>\n");
        s
    }

    /// Writes the SVG to a file, creating parent directories.
    pub fn write_svg(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_svg())
    }
}

/// Tick positions and labels over a range.
fn ticks((lo, hi): (f64, f64), log: bool, want: usize) -> Vec<(f64, String)> {
    if log {
        // Decades (with halfway fill-in when few decades).
        let (llo, lhi) = (lo.log10().floor() as i32, hi.log10().ceil() as i32);
        let mut out = Vec::new();
        for d in llo..=lhi {
            let v = 10f64.powi(d);
            if v >= lo * 0.999 && v <= hi * 1.001 {
                out.push((v, fmt_tick(v)));
            }
        }
        if out.len() < 3 {
            for d in llo..=lhi {
                let v = 3.0 * 10f64.powi(d);
                if v > lo && v < hi {
                    out.push((v, fmt_tick(v)));
                }
            }
            out.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        out
    } else {
        let span = hi - lo;
        let raw = span / want.max(2) as f64;
        let mag = 10f64.powf(raw.log10().floor());
        let step = [1.0, 2.0, 2.5, 5.0, 10.0]
            .iter()
            .map(|m| m * mag)
            .find(|&s| span / s <= want as f64)
            .unwrap_or(mag * 10.0);
        let mut v = (lo / step).ceil() * step;
        let mut out = Vec::new();
        while v <= hi + step * 1e-9 {
            out.push((v, fmt_tick(v)));
            v += step;
        }
        out
    }
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{:.0}k", v / 1000.0)
    } else if a >= 10.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LinePlot {
        LinePlot::new("Costs vs processors", "processors", "dollars")
            .with_log_x()
            .series(
                "total",
                vec![(1.0, 0.6), (2.0, 0.62), (4.0, 0.7), (128.0, 3.9)],
            )
            .series(
                "cpu",
                vec![(1.0, 0.55), (2.0, 0.57), (4.0, 0.65), (128.0, 3.8)],
            )
    }

    #[test]
    fn svg_contains_marks_and_labels() {
        let svg = sample().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("Costs vs processors"));
        assert!(svg.contains("processors"));
        // Legend + direct labels for 2 series.
        assert!(svg.matches(">total</text>").count() >= 2);
        // Palette order: first series is blue, second aqua.
        assert!(svg.contains("#2a78d6"));
        assert!(svg.contains("#1baf7a"));
    }

    #[test]
    fn single_series_has_no_legend_box() {
        let svg = LinePlot::new("t", "x", "y")
            .series("only", vec![(0.0, 1.0), (1.0, 2.0)])
            .to_svg();
        assert!(
            !svg.contains("<rect x=\"6"),
            "no legend swatch for one series"
        );
        assert_eq!(svg.matches("<polyline").count(), 1);
    }

    #[test]
    fn log_y_requires_positive_values() {
        let plot = LinePlot::new("t", "x", "y")
            .with_log_y()
            .series("s", vec![(0.0, 0.0)]);
        assert!(std::panic::catch_unwind(|| plot.to_svg()).is_err());
    }

    #[test]
    fn more_than_four_series_drop_direct_labels() {
        let mut plot = LinePlot::new("t", "x", "y");
        for i in 0..5 {
            plot = plot.series(format!("s{i}"), vec![(0.0, i as f64 + 1.0), (1.0, 2.0)]);
        }
        let svg = plot.to_svg();
        // Legend shows all five exactly once each (no end-of-line label).
        assert_eq!(svg.matches(">s0</text>").count(), 1);
    }

    #[test]
    #[should_panic(expected = "more than 8 series")]
    fn ninth_series_rejected() {
        let mut plot = LinePlot::new("t", "x", "y");
        for i in 0..9 {
            plot = plot.series(format!("s{i}"), vec![(0.0, 1.0)]);
        }
    }

    #[test]
    fn linear_ticks_are_round() {
        let t = ticks((0.0, 10.0), false, 5);
        assert!(t.len() >= 3 && t.len() <= 7, "{t:?}");
        // Step of 2 over [0, 10]: endpoints and even values.
        assert!(t.iter().any(|(v, _)| *v == 0.0));
        assert!(t.iter().any(|(v, _)| (*v - 10.0).abs() < 1e-9));
        assert!(t.iter().any(|(v, _)| (*v - 2.0).abs() < 1e-9));
    }

    #[test]
    fn log_ticks_hit_decades() {
        let t = ticks((1.0, 1000.0), true, 5);
        let values: Vec<f64> = t.iter().map(|(v, _)| *v).collect();
        for d in [1.0, 10.0, 100.0, 1000.0] {
            assert!(values.iter().any(|v| (v - d).abs() < 1e-9), "{values:?}");
        }
    }

    #[test]
    fn write_svg_creates_file() {
        let dir = std::env::temp_dir().join("mcloud_plot_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("fig.svg");
        sample().write_svg(&path).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("<svg"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degenerate_ranges_are_padded() {
        let svg = LinePlot::new("t", "x", "y")
            .series("flat", vec![(1.0, 5.0), (2.0, 5.0)])
            .to_svg();
        assert!(svg.contains("<polyline"));
    }
}
