//! Cost/performance Pareto analysis.
//!
//! The paper's central observation is a trade-off: "a user who is also
//! concerned about the execution time faces a trade-off between minimizing
//! the execution cost and minimizing the execution time." The Pareto
//! frontier of (cost, makespan) points makes that trade-off explicit and
//! identifies provisioning levels that are never worth choosing.

/// A candidate plan: total cost in dollars and makespan in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostTimePoint {
    /// Total dollars.
    pub cost: f64,
    /// Makespan in seconds.
    pub time: f64,
}

impl CostTimePoint {
    /// True when `self` is at least as good on both axes and strictly
    /// better on one.
    pub fn dominates(&self, other: &CostTimePoint) -> bool {
        (self.cost <= other.cost && self.time <= other.time)
            && (self.cost < other.cost || self.time < other.time)
    }
}

/// Indices of the non-dominated points, sorted by ascending cost (and thus
/// descending time along the frontier). Ties are kept once (the earliest
/// index wins).
pub fn pareto_frontier(points: &[CostTimePoint]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    // Sort by cost, then time, then index for determinism.
    idx.sort_by(|&a, &b| {
        points[a]
            .cost
            .total_cmp(&points[b].cost)
            .then(points[a].time.total_cmp(&points[b].time))
            .then(a.cmp(&b))
    });
    let mut frontier = Vec::new();
    let mut best_time = f64::INFINITY;
    let mut last_kept: Option<CostTimePoint> = None;
    for i in idx {
        let p = points[i];
        if p.time < best_time {
            // Skip exact duplicates of the last kept point.
            if last_kept != Some(p) {
                frontier.push(i);
                last_kept = Some(p);
            }
            best_time = p.time;
        }
    }
    frontier
}

/// Picks the cheapest point whose makespan is within `deadline_s` — the
/// paper's "16 processors gives 5.5 h for $9.25" style of choice.
pub fn cheapest_within_deadline(points: &[CostTimePoint], deadline_s: f64) -> Option<usize> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.time <= deadline_s)
        .min_by(|(ia, a), (ib, b)| a.cost.total_cmp(&b.cost).then(ia.cmp(ib)))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(cost: f64, time: f64) -> CostTimePoint {
        CostTimePoint { cost, time }
    }

    #[test]
    fn dominance_is_strict() {
        assert!(pt(1.0, 1.0).dominates(&pt(2.0, 2.0)));
        assert!(pt(1.0, 1.0).dominates(&pt(1.0, 2.0)));
        assert!(!pt(1.0, 1.0).dominates(&pt(1.0, 1.0)));
        assert!(!pt(1.0, 3.0).dominates(&pt(2.0, 2.0)));
    }

    #[test]
    fn frontier_excludes_dominated_points() {
        // Classic provisioning curve: more processors = more cost, less time,
        // with one silly point that is dominated.
        let points = vec![
            pt(0.60, 19800.0), // 1 proc
            pt(0.70, 10000.0), // 2 procs
            pt(1.00, 6000.0),  // 4 procs
            pt(1.20, 6500.0),  // dominated (slower AND pricier than 4 procs)
            pt(3.90, 1100.0),  // 128 procs
        ];
        assert_eq!(pareto_frontier(&points), vec![0, 1, 2, 4]);
    }

    #[test]
    fn frontier_of_monotone_curve_keeps_everything() {
        let points: Vec<_> = (0..5)
            .map(|i| pt(1.0 + i as f64, 100.0 - 10.0 * i as f64))
            .collect();
        assert_eq!(pareto_frontier(&points), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn frontier_deduplicates_identical_points() {
        let points = vec![pt(1.0, 1.0), pt(1.0, 1.0), pt(2.0, 0.5)];
        assert_eq!(pareto_frontier(&points), vec![0, 2]);
    }

    #[test]
    fn frontier_of_empty_is_empty() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn deadline_choice_matches_paper_example() {
        // Shaped like the 4-degree sweep: $9 @ 85 h, $9.25 @ 5.5 h,
        // $13.92 @ 1 h. With a 6 h deadline, 16 processors win.
        let points = vec![
            pt(9.00, 85.0 * 3600.0),
            pt(9.25, 5.5 * 3600.0),
            pt(13.92, 1.05 * 3600.0),
        ];
        assert_eq!(cheapest_within_deadline(&points, 6.0 * 3600.0), Some(1));
        assert_eq!(cheapest_within_deadline(&points, 100.0 * 3600.0), Some(0));
        assert_eq!(cheapest_within_deadline(&points, 60.0), None);
    }
}
