//! Cache-aware sweep drivers.
//!
//! Same axes and byte-identical results as the from-scratch drivers in
//! [`crate::sweeps`] (the per-point configs come from the *same* shared
//! builders, so the two paths cannot drift), but every point already in
//! the [`ResultCache`] is answered by a lookup instead of a simulation.
//! A sweep re-run with overlapping points — a widened ladder, a repeated
//! CLI invocation with a shared `MCLOUD_CACHE_DIR`, a serve query — only
//! pays for the new points.

use mcloud_cache::{simulate_batch_cached, ResultCache};
use mcloud_core::{BatchScratch, ExecConfig};
use mcloud_dag::Workflow;

use crate::sweeps::{
    bandwidth_configs, fault_rate_configs, processor_configs, BandwidthPoint, FaultRatePoint,
    ProcessorPoint,
};

/// [`processor_sweep`](crate::processor_sweep) through the cache:
/// identical output, already-evaluated processor counts skip simulation.
pub fn processor_sweep_cached(
    wf: &Workflow,
    base: &ExecConfig,
    processors: &[u32],
    cache: &ResultCache,
) -> Vec<ProcessorPoint> {
    let cfgs = processor_configs(base, processors);
    let reports = simulate_batch_cached(wf, &cfgs, &mut BatchScratch::new(), cache);
    processors
        .iter()
        .zip(reports)
        .map(|(&p, report)| ProcessorPoint {
            processors: p,
            report,
        })
        .collect()
}

/// [`bandwidth_sweep`](crate::bandwidth_sweep) through the cache.
pub fn bandwidth_sweep_cached(
    wf: &Workflow,
    base: &ExecConfig,
    bandwidths_bps: &[f64],
    cache: &ResultCache,
) -> Vec<BandwidthPoint> {
    let cfgs = bandwidth_configs(base, bandwidths_bps);
    let reports = simulate_batch_cached(wf, &cfgs, &mut BatchScratch::new(), cache);
    bandwidths_bps
        .iter()
        .zip(reports)
        .map(|(&bps, report)| BandwidthPoint {
            bandwidth_bps: bps,
            report,
        })
        .collect()
}

/// [`fault_rate_sweep`](crate::fault_rate_sweep) through the cache. The
/// fault seed is part of each point's digest, so a different `seed` can
/// never alias a cached point.
pub fn fault_rate_sweep_cached(
    wf: &Workflow,
    base: &ExecConfig,
    probs: &[f64],
    seed: u64,
    cache: &ResultCache,
) -> Vec<FaultRatePoint> {
    let cfgs = fault_rate_configs(base, probs, seed);
    let reports = simulate_batch_cached(wf, &cfgs, &mut BatchScratch::new(), cache);
    probs
        .iter()
        .zip(reports)
        .map(|(&p, report)| FaultRatePoint {
            failure_prob: p,
            report,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bandwidth_sweep, fault_rate_sweep, geometric_processors, processor_sweep};
    use mcloud_cache::DEFAULT_BUDGET_BYTES;
    use mcloud_montage::{generate, MosaicConfig};

    #[test]
    fn cached_drivers_match_scratch_drivers_on_every_axis() {
        let wf = generate(&MosaicConfig::new(0.5));
        let base = ExecConfig::paper_default();
        let cache = ResultCache::new(DEFAULT_BUDGET_BYTES, None);

        let procs = geometric_processors(16);
        assert_eq!(
            processor_sweep_cached(&wf, &base, &procs, &cache),
            processor_sweep(&wf, &base, &procs)
        );

        let bws = [5e6, 10e6, 20e6];
        assert_eq!(
            bandwidth_sweep_cached(&wf, &base, &bws, &cache),
            bandwidth_sweep(&wf, &base, &bws)
        );

        let probs = [0.0, 0.02, 0.05];
        let fixed = ExecConfig::fixed(8).with_retry(mcloud_core::RetryPolicy::bounded(3));
        assert_eq!(
            fault_rate_sweep_cached(&wf, &fixed, &probs, 2008, &cache),
            fault_rate_sweep(&wf, &fixed, &probs, 2008)
        );
    }

    #[test]
    fn widened_ladder_only_simulates_new_points() {
        let wf = generate(&MosaicConfig::new(0.2));
        let base = ExecConfig::paper_default();
        let cache = ResultCache::new(DEFAULT_BUDGET_BYTES, None);
        processor_sweep_cached(&wf, &base, &geometric_processors(8), &cache); // 1,2,4,8
        let before = cache.counters().misses;
        assert_eq!(before, 4);
        processor_sweep_cached(&wf, &base, &geometric_processors(32), &cache); // + 16,32
        let c = cache.counters();
        assert_eq!(c.misses - before, 2, "only P=16 and P=32 simulate");
        assert_eq!(c.hits_mem, 4);
    }
}
