//! Incremental sweep drivers: checkpoint/fork re-simulation.
//!
//! Adjacent points of a sweep axis share long event prefixes — a `P = 64`
//! run is event-for-event identical to `P = 63` until the 64th slot is
//! first wanted. The drivers here walk each axis through an
//! [`IncrementalChain`], which snapshots the full deterministic state
//! during each run and forks the next point off the latest checkpoint its
//! divergence witness proved sound, replaying only the divergent suffix.
//!
//! Results are **byte-identical** to the from-scratch drivers in
//! [`crate::sweeps`] at every point (both build their configurations from
//! the same shared helpers); points the witness cannot bound silently fall
//! back to `t = 0`. Under more than one worker lane the axis is split into
//! contiguous chunks — one chain per lane — so parallel speedup composes
//! with within-chunk reuse without perturbing a single output byte.

use std::sync::atomic::{AtomicUsize, Ordering};

use mcloud_core::{ExecConfig, IncrementalChain, IncrementalStats, Report, SweepAxis};
use mcloud_dag::Workflow;
use mcloud_simkit::configured_lanes;

use crate::sweeps::{
    bandwidth_configs, fault_rate_configs, processor_configs, BandwidthPoint, FaultRatePoint,
    ProcessorPoint,
};

/// Runs `cfgs` through per-lane [`IncrementalChain`]s: the axis is split
/// into `lanes` contiguous, balanced chunks, each walked in order by its
/// own chain on its own thread. Reports come back in input order and are
/// byte-identical to sequential from-scratch simulation regardless of
/// `lanes` (each chunk's first point simply falls back to `t = 0`).
pub(crate) fn run_chunked(
    wf: &Workflow,
    axis: SweepAxis,
    cfgs: &[ExecConfig],
    lanes: usize,
    on_progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> (Vec<Report>, IncrementalStats) {
    let total = cfgs.len();
    let lanes = lanes.clamp(1, total.max(1));
    let done = AtomicUsize::new(0);
    let run_chunk = |chunk: &[ExecConfig]| {
        let mut chain = IncrementalChain::new(axis);
        let mut reports = Vec::with_capacity(chunk.len());
        for (i, cfg) in chunk.iter().enumerate() {
            reports.push(chain.run_point(wf, cfg, chunk.get(i + 1)));
            if let Some(cb) = on_progress {
                cb(done.fetch_add(1, Ordering::Relaxed) + 1, total);
            }
        }
        (reports, chain.stats())
    };
    if lanes == 1 {
        return run_chunk(cfgs);
    }
    // Contiguous balanced split: the first `total % lanes` chunks take one
    // extra point. Chunk order is input order, so concatenation restores it.
    let base = total / lanes;
    let rem = total % lanes;
    let mut chunks = Vec::with_capacity(lanes);
    let mut start = 0;
    for lane in 0..lanes {
        let end = start + base + usize::from(lane < rem);
        chunks.push(&cfgs[start..end]);
        start = end;
    }
    let per_lane: Vec<(Vec<Report>, IncrementalStats)> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(|| run_chunk(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });
    let mut reports = Vec::with_capacity(total);
    let mut stats = IncrementalStats::default();
    for (lane_reports, lane_stats) in per_lane {
        reports.extend(lane_reports);
        stats.points += lane_stats.points;
        stats.resumed += lane_stats.resumed;
        stats.reused_events += lane_stats.reused_events;
        stats.total_events += lane_stats.total_events;
    }
    (reports, stats)
}

/// [`crate::processor_sweep`] via checkpoint/fork re-simulation:
/// byte-identical points, sublinear work in the number of points.
pub fn processor_sweep_incremental(
    wf: &Workflow,
    base: &ExecConfig,
    processors: &[u32],
) -> Vec<ProcessorPoint> {
    processor_sweep_incremental_stats(wf, base, processors).0
}

/// [`processor_sweep_incremental`] plus the chain's reuse counters, for
/// speedup accounting and fallback visibility.
pub fn processor_sweep_incremental_stats(
    wf: &Workflow,
    base: &ExecConfig,
    processors: &[u32],
) -> (Vec<ProcessorPoint>, IncrementalStats) {
    let cfgs = processor_configs(base, processors);
    let (reports, stats) = run_chunked(wf, SweepAxis::Processors, &cfgs, configured_lanes(), None);
    let points = processors
        .iter()
        .zip(reports)
        .map(|(&p, report)| ProcessorPoint {
            processors: p,
            report,
        })
        .collect();
    (points, stats)
}

/// [`processor_sweep_incremental`] with a live progress callback:
/// `on_progress(done, total)` fires after each completed point, in
/// completion order, from whichever lane finished it. The results are
/// byte-identical to [`processor_sweep_incremental`] — the callback
/// observes, it cannot perturb.
pub fn processor_sweep_incremental_progress(
    wf: &Workflow,
    base: &ExecConfig,
    processors: &[u32],
    on_progress: &(dyn Fn(usize, usize) + Sync),
) -> Vec<ProcessorPoint> {
    let cfgs = processor_configs(base, processors);
    let (reports, _) = run_chunked(
        wf,
        SweepAxis::Processors,
        &cfgs,
        configured_lanes(),
        Some(on_progress),
    );
    processors
        .iter()
        .zip(reports)
        .map(|(&p, report)| ProcessorPoint {
            processors: p,
            report,
        })
        .collect()
}

/// [`crate::bandwidth_sweep`] via checkpoint/fork re-simulation. With
/// prestaged inputs almost the whole run precedes the first transfer, so
/// nearly everything is reused; cold-staged points fall back (their first
/// transfer is at `t = 0`) and match from-scratch output exactly.
pub fn bandwidth_sweep_incremental(
    wf: &Workflow,
    base: &ExecConfig,
    bandwidths_bps: &[f64],
) -> Vec<BandwidthPoint> {
    bandwidth_sweep_incremental_stats(wf, base, bandwidths_bps).0
}

/// [`bandwidth_sweep_incremental`] plus the chain's reuse counters.
pub fn bandwidth_sweep_incremental_stats(
    wf: &Workflow,
    base: &ExecConfig,
    bandwidths_bps: &[f64],
) -> (Vec<BandwidthPoint>, IncrementalStats) {
    let cfgs = bandwidth_configs(base, bandwidths_bps);
    let (reports, stats) = run_chunked(wf, SweepAxis::Bandwidth, &cfgs, configured_lanes(), None);
    let points = bandwidths_bps
        .iter()
        .zip(reports)
        .map(|(&bps, report)| BandwidthPoint {
            bandwidth_bps: bps,
            report,
        })
        .collect();
    (points, stats)
}

/// [`crate::fault_rate_sweep`] via checkpoint/fork re-simulation: the
/// witness is the first RNG draw whose outcome or stream consumption
/// differs between adjacent rates, so low-rate neighbours share most of
/// their history.
pub fn fault_rate_sweep_incremental(
    wf: &Workflow,
    base: &ExecConfig,
    probs: &[f64],
    seed: u64,
) -> Vec<FaultRatePoint> {
    fault_rate_sweep_incremental_stats(wf, base, probs, seed).0
}

/// [`fault_rate_sweep_incremental`] plus the chain's reuse counters.
pub fn fault_rate_sweep_incremental_stats(
    wf: &Workflow,
    base: &ExecConfig,
    probs: &[f64],
    seed: u64,
) -> (Vec<FaultRatePoint>, IncrementalStats) {
    let cfgs = fault_rate_configs(base, probs, seed);
    let (reports, stats) = run_chunked(wf, SweepAxis::FaultRate, &cfgs, configured_lanes(), None);
    let points = probs
        .iter()
        .zip(reports)
        .map(|(&p, report)| FaultRatePoint {
            failure_prob: p,
            report,
        })
        .collect();
    (points, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweeps::{bandwidth_sweep, fault_rate_sweep, processor_sweep};
    use mcloud_core::{DataMode, FaultModel, RetryPolicy};
    use mcloud_montage::{generate, MosaicConfig};

    const PROCS: [u32; 8] = [1, 2, 4, 8, 12, 16, 24, 32];
    const MBPS: [f64; 5] = [5.0, 10.0, 20.0, 40.0, 100.0];
    const PROBS: [f64; 4] = [0.0, 0.02, 0.08, 0.15];
    const SEED: u64 = 0xEC_2008;

    fn wf() -> mcloud_dag::Workflow {
        generate(&MosaicConfig::new(1.0))
    }

    /// Every base configuration the differential matrix exercises: the
    /// three storage modes, with and without task faults.
    fn bases() -> Vec<ExecConfig> {
        let mut out = Vec::new();
        for mode in DataMode::ALL {
            let base = ExecConfig::paper_default().mode(mode);
            out.push(base.clone());
            out.push(
                base.with_fault_model(FaultModel::tasks_only(0.05, SEED))
                    .with_retry(RetryPolicy::bounded(8)),
            );
        }
        out
    }

    #[test]
    fn processor_axis_matches_scratch_at_one_and_four_lanes() {
        let wf = wf();
        for base in bases() {
            let scratch = processor_sweep(&wf, &base, &PROCS);
            for lanes in [1, 4] {
                let cfgs = processor_configs(&base, &PROCS);
                let (reports, stats) = run_chunked(&wf, SweepAxis::Processors, &cfgs, lanes, None);
                assert!(stats.resumed > 0, "lanes {lanes}: nothing resumed");
                for (point, report) in scratch.iter().zip(reports) {
                    assert_eq!(
                        point.report, report,
                        "P = {} drifted at {lanes} lanes",
                        point.processors
                    );
                }
            }
        }
    }

    #[test]
    fn bandwidth_axis_matches_scratch_at_one_and_four_lanes() {
        let wf = wf();
        let bws: Vec<f64> = MBPS.iter().map(|m| m * 1e6).collect();
        for base in bases() {
            // Prestaged inputs defer the first transfer, giving the witness
            // something to bound; cold staging exercises the fallback path.
            for base in [base.clone(), base.prestaged(true)] {
                let scratch = bandwidth_sweep(&wf, &base, &bws);
                for lanes in [1, 4] {
                    let cfgs = bandwidth_configs(&base, &bws);
                    let (reports, _) = run_chunked(&wf, SweepAxis::Bandwidth, &cfgs, lanes, None);
                    for (point, report) in scratch.iter().zip(reports) {
                        assert_eq!(
                            point.report, report,
                            "{} bps drifted at {lanes} lanes",
                            point.bandwidth_bps
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fault_axis_matches_scratch_at_one_and_four_lanes() {
        let wf = wf();
        for mode in DataMode::ALL {
            let base = ExecConfig::paper_default()
                .mode(mode)
                .with_retry(RetryPolicy::bounded(16));
            let scratch = fault_rate_sweep(&wf, &base, &PROBS, SEED);
            for lanes in [1, 4] {
                let cfgs = fault_rate_configs(&base, &PROBS, SEED);
                let (reports, _) = run_chunked(&wf, SweepAxis::FaultRate, &cfgs, lanes, None);
                for (point, report) in scratch.iter().zip(reports) {
                    assert_eq!(
                        point.report, report,
                        "rate {} drifted at {lanes} lanes ({mode:?})",
                        point.failure_prob
                    );
                }
            }
        }
    }

    #[test]
    fn preemption_forces_fallback_but_stays_identical() {
        // MTTF > 0 disarms the processor witness: every point must fall
        // back to t = 0 and still match the from-scratch sweep exactly.
        let wf = wf();
        let mut model = FaultModel::tasks_only(0.05, SEED);
        model.proc_mttf_s = 50_000.0;
        let base = ExecConfig::paper_default()
            .with_fault_model(model)
            .with_retry(RetryPolicy::bounded(16));
        let procs = [4, 8, 16];
        let scratch = processor_sweep(&wf, &base, &procs);
        let cfgs = processor_configs(&base, &procs);
        let (reports, stats) = run_chunked(&wf, SweepAxis::Processors, &cfgs, 1, None);
        assert_eq!(stats.resumed, 0, "preemption must disarm the witness");
        for (point, report) in scratch.iter().zip(reports) {
            assert_eq!(point.report, report);
        }
    }

    #[test]
    fn public_drivers_agree_with_their_scratch_twins() {
        let wf = wf();
        let base = ExecConfig::paper_default();
        assert_eq!(
            processor_sweep_incremental(&wf, &base, &PROCS),
            processor_sweep(&wf, &base, &PROCS),
        );
        let bws: Vec<f64> = MBPS.iter().map(|m| m * 1e6).collect();
        assert_eq!(
            bandwidth_sweep_incremental(&wf, &base, &bws),
            bandwidth_sweep(&wf, &base, &bws),
        );
        let faulty = base.with_retry(RetryPolicy::bounded(16));
        assert_eq!(
            fault_rate_sweep_incremental(&wf, &faulty, &PROBS, SEED),
            fault_rate_sweep(&wf, &faulty, &PROBS, SEED),
        );
    }

    #[test]
    fn progress_callback_counts_every_point_without_perturbing() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let wf = wf();
        let base = ExecConfig::paper_default();
        let fired = AtomicUsize::new(0);
        let points = processor_sweep_incremental_progress(&wf, &base, &PROCS, &|done, total| {
            assert!(done >= 1 && done <= total);
            assert_eq!(total, PROCS.len());
            fired.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(fired.load(Ordering::Relaxed), PROCS.len());
        assert_eq!(points, processor_sweep(&wf, &base, &PROCS));
    }

    #[test]
    fn lane_counts_beyond_the_axis_are_clamped() {
        let wf = wf();
        let cfgs = processor_configs(&ExecConfig::paper_default(), &[2, 4]);
        let (reports, stats) = run_chunked(&wf, SweepAxis::Processors, &cfgs, 64, None);
        assert_eq!(reports.len(), 2);
        assert_eq!(stats.points, 2);
    }
}
