//! A small deterministic fork-join helper built on scoped threads.
//!
//! Sweeps fan independent simulations out across cores. The contract that
//! matters here is *determinism*: the output vector is ordered by input
//! index regardless of how the OS schedules the workers, so a parallel
//! sweep is byte-identical to a sequential one. Work is handed out through
//! an atomic index dispenser (cheap dynamic load balancing — sweep points
//! vary widely in cost as `P` grows). Workers grab small *batches* of
//! indices per atomic increment, so sweeps over many cheap points don't
//! serialize on the dispenser cache line; results are still slotted by
//! input index, so the output stays byte-identical to a sequential run.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Indices handed to a worker per `fetch_add`. Small enough that the tail
/// imbalance is at most `CHUNK - 1` cheap points per worker, large enough
/// to divide dispenser contention by `CHUNK`.
const CHUNK: usize = 4;

/// Applies `f` to every item, in parallel, returning results in input
/// order. Panics from `f` propagate to the caller.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + CHUNK).min(n);
                        for (off, item) in items[start..end].iter().enumerate() {
                            local.push((start + off, f(item)));
                        }
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| match w.join() {
                Ok(local) => local,
                // Re-raise the worker's own panic payload, matching what a
                // sequential run of `f` would have done.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in indexed {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("sweep worker dropped an item"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..200).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn handles_sizes_straddling_chunk_boundaries() {
        // Around the batch size: tails shorter than a full chunk, exactly
        // one chunk, one element over.
        for n in [CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK - 1, 13, 203] {
            let items: Vec<usize> = (0..n).collect();
            assert_eq!(
                par_map(&items, |&x| x + 1),
                items.iter().map(|x| x + 1).collect::<Vec<_>>(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn matches_sequential_for_nontrivial_work() {
        let items: Vec<u64> = (0..64).collect();
        let work = |&x: &u64| (0..1000).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i));
        assert_eq!(
            par_map(&items, work),
            items.iter().map(work).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_worker_panics() {
        par_map(&[1u32, 2, 3, 4], |&x| {
            assert!(x != 3, "boom");
            x
        });
    }
}
