//! A deterministic fork-join helper: the sweep-facing facade over the
//! kernel's persistent [`WorkerPool`](mcloud_simkit::WorkerPool).
//!
//! Sweeps fan independent simulations out across cores. The contract that
//! matters here is *determinism*: the output vector is ordered by input
//! index regardless of how the OS schedules the workers, so a parallel
//! sweep is byte-identical to a sequential one.
//!
//! Earlier versions spawned and joined scoped OS threads per call; this
//! one delegates to the process-wide pool, which is created once and
//! reused, so a sweep pays a condvar broadcast instead of thread churn.
//! Degenerate inputs — at most one item, or a one-lane configuration
//! (`MCLOUD_WORKERS=1`, or a single-core host) — run inline on the caller
//! thread with zero spawns and never create the pool.

/// Applies `f` to every item, in parallel, returning results in input
/// order. Panics from `f` propagate to the caller.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    mcloud_simkit::pool_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..200).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn handles_sizes_straddling_chunk_boundaries() {
        // Around the pool's dispenser batch size: tails shorter than a
        // full chunk, exactly one chunk, one element over.
        for n in [3, 4, 5, 11, 13, 203] {
            let items: Vec<usize> = (0..n).collect();
            assert_eq!(
                par_map(&items, |&x| x + 1),
                items.iter().map(|x| x + 1).collect::<Vec<_>>(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn matches_sequential_for_nontrivial_work() {
        let items: Vec<u64> = (0..64).collect();
        let work = |&x: &u64| (0..1000).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i));
        assert_eq!(
            par_map(&items, work),
            items.iter().map(work).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_worker_panics() {
        par_map(&[1u32, 2, 3, 4], |&x| {
            assert!(x != 3, "boom");
            x
        });
    }
}
