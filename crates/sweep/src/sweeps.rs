//! The parameter sweeps behind the paper's figures, run in parallel.
//!
//! Each sweep point is an independent deterministic simulation. A sweep
//! builds its full `ExecConfig` list up front and hands it to
//! [`simulate_batch`], which fans the points across the persistent worker
//! pool with one warm scratch per lane (the simulations themselves stay
//! single-threaded and reproducible, so the batch output is byte-identical
//! to a sequential loop).

use mcloud_core::{
    simulate_batch, simulate_batch_progress, simulate_batch_workflows, BatchScratch, DataMode,
    ExecConfig, FaultModel, Provisioning, Report,
};
use mcloud_dag::Workflow;

/// One point of a processor-count sweep (Figures 4–6).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorPoint {
    /// Processors provisioned.
    pub processors: u32,
    /// Simulation result.
    pub report: Report,
}

/// One point of a data-management-mode comparison (Figures 7–10).
#[derive(Debug, Clone, PartialEq)]
pub struct ModePoint {
    /// The data-management mode.
    pub mode: DataMode,
    /// Simulation result.
    pub report: Report,
}

/// One point of a CCR sweep (Figure 11).
#[derive(Debug, Clone, PartialEq)]
pub struct CcrPoint {
    /// The CCR the workflow was rescaled to.
    pub target_ccr: f64,
    /// The CCR actually achieved after integer-byte rounding.
    pub actual_ccr: f64,
    /// Simulation result.
    pub report: Report,
}

/// One point of a failure-rate sweep: the same plan re-simulated with
/// task faults injected at `failure_prob` per attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRatePoint {
    /// Per-attempt task failure probability injected at this point.
    pub failure_prob: f64,
    /// Simulation result (check [`Report::completed`]: points whose retry
    /// budget was exhausted carry a partial report).
    pub report: Report,
}

/// One point of a link-bandwidth sweep: the same plan re-simulated with a
/// different user↔storage link speed.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthPoint {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Simulation result.
    pub report: Report,
}

/// Per-point configurations of a task-failure-rate axis. Shared by the
/// from-scratch and incremental drivers so the two paths cannot drift.
pub(crate) fn fault_rate_configs(base: &ExecConfig, probs: &[f64], seed: u64) -> Vec<ExecConfig> {
    probs
        .iter()
        .map(|&p| {
            // A zero-rate point keeps the base configuration untouched, so
            // it reproduces the fault-free baseline byte for byte.
            let faults = if p > 0.0 {
                let mut fm = base.faults.unwrap_or(FaultModel::tasks_only(0.0, seed));
                fm.task_failure_prob = p;
                fm.seed = seed;
                Some(fm)
            } else {
                base.faults
            };
            ExecConfig {
                faults,
                ..base.clone()
            }
        })
        .collect()
}

/// Per-point configurations of a processor axis (fixed provisioning).
pub(crate) fn processor_configs(base: &ExecConfig, processors: &[u32]) -> Vec<ExecConfig> {
    processors
        .iter()
        .map(|&p| ExecConfig {
            provisioning: Provisioning::Fixed { processors: p },
            ..base.clone()
        })
        .collect()
}

/// Per-point configurations of a link-bandwidth axis.
pub(crate) fn bandwidth_configs(base: &ExecConfig, bandwidths_bps: &[f64]) -> Vec<ExecConfig> {
    bandwidths_bps
        .iter()
        .map(|&bps| ExecConfig {
            bandwidth_bps: bps,
            ..base.clone()
        })
        .collect()
}

/// Simulates the workflow at each task-failure rate, in parallel. Every
/// point uses the same `seed`, so the sweep isolates the rate axis; the
/// retry policy comes from `base`.
pub fn fault_rate_sweep(
    wf: &Workflow,
    base: &ExecConfig,
    probs: &[f64],
    seed: u64,
) -> Vec<FaultRatePoint> {
    let cfgs = fault_rate_configs(base, probs, seed);
    let reports = simulate_batch(wf, &cfgs, &mut BatchScratch::new());
    probs
        .iter()
        .zip(reports)
        .map(|(&p, report)| FaultRatePoint {
            failure_prob: p,
            report,
        })
        .collect()
}

/// The paper's processor axis: 1, 2, 4, ... up to `max` ("from 1 to 128 in
/// a geometric progression").
pub fn geometric_processors(max: u32) -> Vec<u32> {
    assert!(max >= 1);
    let mut out = Vec::new();
    let mut p = 1u32;
    while p <= max {
        out.push(p);
        match p.checked_mul(2) {
            Some(next) => p = next,
            None => break,
        }
    }
    out
}

/// Simulates the workflow under fixed provisioning for every processor
/// count, in parallel.
pub fn processor_sweep(
    wf: &Workflow,
    base: &ExecConfig,
    processors: &[u32],
) -> Vec<ProcessorPoint> {
    let cfgs = processor_configs(base, processors);
    let reports = simulate_batch(wf, &cfgs, &mut BatchScratch::new());
    processors
        .iter()
        .zip(reports)
        .map(|(&p, report)| ProcessorPoint {
            processors: p,
            report,
        })
        .collect()
}

/// [`processor_sweep`] with a live progress callback: `on_progress(done,
/// total)` fires after each completed point, in completion order, from
/// whichever pool lane finished it. The sweep's results are byte-identical
/// to [`processor_sweep`] — the callback observes, it cannot perturb.
/// This is the heartbeat behind `mcloud sweep --progress`.
pub fn processor_sweep_progress(
    wf: &Workflow,
    base: &ExecConfig,
    processors: &[u32],
    on_progress: &(dyn Fn(usize, usize) + Sync),
) -> Vec<ProcessorPoint> {
    let cfgs = processor_configs(base, processors);
    let reports = simulate_batch_progress(wf, &cfgs, &mut BatchScratch::new(), on_progress);
    processors
        .iter()
        .zip(reports)
        .map(|(&p, report)| ProcessorPoint {
            processors: p,
            report,
        })
        .collect()
}

/// Simulates the workflow under each of the three data-management modes,
/// in parallel.
pub fn mode_matrix(wf: &Workflow, base: &ExecConfig) -> Vec<ModePoint> {
    let cfgs: Vec<ExecConfig> = DataMode::ALL
        .iter()
        .map(|&mode| ExecConfig {
            mode,
            ..base.clone()
        })
        .collect();
    let reports = simulate_batch(wf, &cfgs, &mut BatchScratch::new());
    DataMode::ALL
        .iter()
        .zip(reports)
        .map(|(&mode, report)| ModePoint { mode, report })
        .collect()
}

/// Simulates the workflow at each link bandwidth, in parallel — the axis
/// behind the "what does a faster link buy" analyses.
pub fn bandwidth_sweep(
    wf: &Workflow,
    base: &ExecConfig,
    bandwidths_bps: &[f64],
) -> Vec<BandwidthPoint> {
    let cfgs = bandwidth_configs(base, bandwidths_bps);
    let reports = simulate_batch(wf, &cfgs, &mut BatchScratch::new());
    bandwidths_bps
        .iter()
        .zip(reports)
        .map(|(&bps, report)| BandwidthPoint {
            bandwidth_bps: bps,
            report,
        })
        .collect()
}

/// Rescales every file size so the workflow's CCR at the given link equals
/// `desired_ccr` — the paper's transformation: "we multiply each file size
/// by `CCR_d / CCR_r` to get the desired CCR".
///
/// # Panics
/// Panics if `desired_ccr` is not positive and finite.
pub fn scale_to_ccr(wf: &Workflow, desired_ccr: f64, link_bps: f64) -> Workflow {
    assert!(
        desired_ccr.is_finite() && desired_ccr > 0.0,
        "desired CCR must be positive, got {desired_ccr}"
    );
    let real = wf.ccr_at_link(link_bps);
    let mut scaled = wf.clone();
    scaled.scale_file_sizes(desired_ccr / real);
    scaled
}

/// Simulates the workflow rescaled to each target CCR, in parallel
/// (Figure 11 uses 8 fixed processors on the 1-degree workflow). The
/// rescaled workflows are built up front; the batch varies the *workflow*
/// under one shared configuration.
pub fn ccr_sweep(wf: &Workflow, base: &ExecConfig, targets: &[f64]) -> Vec<CcrPoint> {
    let scaled: Vec<Workflow> = targets
        .iter()
        .map(|&ccr| scale_to_ccr(wf, ccr, base.bandwidth_bps))
        .collect();
    let reports = simulate_batch_workflows(&scaled, base, &mut BatchScratch::new());
    targets
        .iter()
        .zip(scaled.iter())
        .zip(reports)
        .map(|((&ccr, sw), report)| CcrPoint {
            target_ccr: ccr,
            actual_ccr: sw.ccr_at_link(base.bandwidth_bps),
            report,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcloud_core::simulate;
    use mcloud_montage::{montage_1_degree, paper_figure3};

    #[test]
    fn geometric_progression_matches_paper_axis() {
        assert_eq!(geometric_processors(128), vec![1, 2, 4, 8, 16, 32, 64, 128]);
        assert_eq!(geometric_processors(1), vec![1]);
        assert_eq!(geometric_processors(100), vec![1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn processor_sweep_covers_every_count_in_order() {
        let wf = paper_figure3();
        let points = processor_sweep(&wf, &ExecConfig::paper_default(), &[1, 2, 4]);
        let procs: Vec<u32> = points.iter().map(|p| p.processors).collect();
        assert_eq!(procs, vec![1, 2, 4]);
        for p in &points {
            assert_eq!(p.report.processors, Some(p.processors));
        }
    }

    #[test]
    fn processor_sweep_equals_sequential_simulation() {
        // Parallel execution must not perturb results.
        let wf = paper_figure3();
        let base = ExecConfig::paper_default();
        let points = processor_sweep(&wf, &base, &[1, 3]);
        for p in &points {
            let direct = simulate(&wf, &ExecConfig::fixed(p.processors));
            assert_eq!(p.report, direct);
        }
    }

    #[test]
    fn mode_matrix_covers_all_three_modes() {
        let wf = paper_figure3();
        let points = mode_matrix(&wf, &ExecConfig::paper_default());
        let modes: Vec<DataMode> = points.iter().map(|p| p.mode).collect();
        assert_eq!(modes, DataMode::ALL.to_vec());
    }

    #[test]
    fn scale_to_ccr_hits_the_target() {
        let wf = montage_1_degree();
        for target in [0.01, 0.053, 0.2, 1.0] {
            let scaled = scale_to_ccr(&wf, target, 10e6);
            let got = scaled.ccr_at_link(10e6);
            assert!(
                (got - target).abs() / target < 0.01,
                "target {target}, got {got}"
            );
            // Structure untouched.
            assert_eq!(scaled.num_tasks(), wf.num_tasks());
            assert!((scaled.total_runtime_s() - wf.total_runtime_s()).abs() < 1e-9);
        }
    }

    #[test]
    fn ccr_sweep_reports_actuals() {
        let wf = paper_figure3();
        let points = ccr_sweep(&wf, &ExecConfig::fixed(2), &[0.05, 0.5]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!((p.actual_ccr - p.target_ccr).abs() / p.target_ccr < 0.01);
        }
        // More data-intensive means more transfer spend.
        assert!(points[1].report.costs.transfer() > points[0].report.costs.transfer());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn scale_to_ccr_rejects_zero() {
        scale_to_ccr(&paper_figure3(), 0.0, 10e6);
    }

    #[test]
    fn bandwidth_sweep_equals_sequential_simulation() {
        let wf = paper_figure3();
        let base = ExecConfig::paper_default();
        let bws = [5e6, 10e6, 100e6];
        let points = bandwidth_sweep(&wf, &base, &bws);
        assert_eq!(points.len(), 3);
        for (point, &bps) in points.iter().zip(&bws) {
            let direct = simulate(
                &wf,
                &ExecConfig {
                    bandwidth_bps: bps,
                    ..base.clone()
                },
            );
            assert_eq!(point.report, direct, "bandwidth {bps}");
        }
        // A faster link can only shorten the makespan.
        assert!(points[2].report.makespan <= points[0].report.makespan);
    }

    #[test]
    fn fault_rate_sweep_inflates_attempts_monotonically() {
        use mcloud_core::RetryPolicy;
        let wf = paper_figure3();
        let base = ExecConfig::fixed(2).with_retry(RetryPolicy::bounded(20));
        let probs = [0.0, 0.1, 0.4];
        let points = fault_rate_sweep(&wf, &base, &probs, 2008);
        assert_eq!(points.len(), 3);
        // The zero point is byte-identical to the fault-free baseline.
        assert_eq!(points[0].report, simulate(&wf, &base));
        assert_eq!(points[0].report.failed_attempts, 0);
        for p in &points {
            assert!(p.report.completed, "rate {}", p.failure_prob);
        }
        // Higher rates can only add failed attempts and cost (same seed,
        // same workflow; the draw streams differ but the trend holds at
        // these rates on this DAG).
        assert!(points[2].report.failed_attempts > points[0].report.failed_attempts);
        assert!(points[2].report.total_cost() >= points[0].report.total_cost());
        // Parallel fan-out equals sequential simulation.
        let seq = fault_rate_sweep(&wf, &base, &[probs[2]], 2008);
        assert_eq!(seq[0].report, points[2].report);
    }
}
