//! Plain-text tables and CSV emission for experiment results.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A rectangular results table with a header row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned, pipe-separated text table.
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                let _ = write!(out, "{cell:>w$}", w = *w);
            }
            out.push('\n');
        };
        render(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 3 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render(&mut out, row);
        }
        out
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// A column parsed as `f64`, looked up by header name. Returns `None`
    /// if the header is unknown or any cell fails to parse.
    pub fn numeric_column(&self, header: &str) -> Option<Vec<f64>> {
        let idx = self.headers.iter().position(|h| h == header)?;
        self.rows
            .iter()
            .map(|r| r[idx].parse::<f64>().ok())
            .collect()
    }

    /// Renders RFC-4180-style CSV (quoting cells that need it).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let emit = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Writes the CSV rendering to a file, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a dollar amount for table cells.
pub fn fmt_dollars(d: f64) -> String {
    format!("{d:.3}")
}

/// Formats a duration in hours for table cells.
pub fn fmt_hours(h: f64) -> String {
    format!("{h:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["procs", "cost", "time"]);
        t.push_row(vec!["1", "0.60", "5.5"]);
        t.push_row(vec!["128", "3.90", "0.3"]);
        t
    }

    #[test]
    fn ascii_is_aligned() {
        let s = sample().to_ascii();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("procs"));
        assert!(lines[1].starts_with('-'));
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_roundtrips_simple_cells() {
        let csv = sample().to_csv();
        assert_eq!(csv, "procs,cost,time\n1,0.60,5.5\n128,3.90,0.3\n");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["x,y", "say \"hi\""]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("mcloud_table_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("out.csv");
        sample().write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("procs,"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn numeric_columns_parse_or_decline() {
        let t = sample();
        assert_eq!(t.numeric_column("cost"), Some(vec![0.60, 3.90]));
        assert_eq!(t.numeric_column("nope"), None);
        let mut bad = Table::new(vec!["a"]);
        bad.push_row(vec!["xyz"]);
        assert_eq!(bad.numeric_column("a"), None);
        assert_eq!(sample().headers(), &["procs", "cost", "time"]);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
        assert!(Table::new(vec!["x"]).is_empty());
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_dollars(1.23456), "1.235");
        assert_eq!(fmt_hours(5.5), "5.500");
    }
}
