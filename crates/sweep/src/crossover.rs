//! Crossover analysis: where one plan stops being cheaper than another.
//!
//! The paper repeatedly gestures at crossovers — "If the storage charges
//! were higher and transfer costs were lower, it is possible that the
//! Remote I/O mode would have resulted in the least total cost"; "how many
//! requests it would take to make the cost of storing the data on the
//! cloud worthwhile". This module pins those knife edges down by
//! bisection over any scalar knob.

/// Finds a root of `diff` in `[lo, hi]` by bisection, to within `tol`
/// (absolute, on the knob). `diff` is typically
/// `cost_plan_a(knob) - cost_plan_b(knob)` and must be continuous and
/// change sign across the interval; returns `None` when it does not.
///
/// # Panics
/// Panics on an invalid interval or non-positive tolerance.
pub fn find_crossover<F>(lo: f64, hi: f64, tol: f64, diff: F) -> Option<f64>
where
    F: Fn(f64) -> f64,
{
    assert!(
        lo.is_finite() && hi.is_finite() && lo < hi,
        "invalid interval [{lo}, {hi}]"
    );
    assert!(tol > 0.0, "tolerance must be positive");
    let (mut lo, mut hi) = (lo, hi);
    let mut f_lo = diff(lo);
    let f_hi = diff(hi);
    if f_lo == 0.0 {
        return Some(lo);
    }
    if f_hi == 0.0 {
        return Some(hi);
    }
    if f_lo.signum() == f_hi.signum() {
        return None;
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        let f_mid = diff(mid);
        if f_mid == 0.0 {
            return Some(mid);
        }
        if f_mid.signum() == f_lo.signum() {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_linear_root() {
        // 2x - 6 = 0 at x = 3.
        let root = find_crossover(0.0, 10.0, 1e-9, |x| 2.0 * x - 6.0).unwrap();
        assert!((root - 3.0).abs() < 1e-8);
    }

    #[test]
    fn finds_a_nonlinear_root() {
        let root = find_crossover(0.0, 2.0, 1e-10, |x| x * x - 2.0).unwrap();
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn no_sign_change_returns_none() {
        assert_eq!(find_crossover(0.0, 1.0, 1e-6, |_| 1.0), None);
        assert_eq!(find_crossover(0.0, 1.0, 1e-6, |x| -x - 1.0), None);
    }

    #[test]
    fn endpoints_that_are_roots_are_returned() {
        assert_eq!(find_crossover(3.0, 5.0, 1e-6, |x| x - 3.0), Some(3.0));
        assert_eq!(find_crossover(3.0, 5.0, 1e-6, |x| x - 5.0), Some(5.0));
    }

    #[test]
    fn decreasing_functions_work_too() {
        let root = find_crossover(0.0, 10.0, 1e-9, |x| 6.0 - 2.0 * x).unwrap();
        assert!((root - 3.0).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn rejects_backwards_interval() {
        find_crossover(5.0, 1.0, 1e-6, |x| x);
    }
}
