//! Randomized-property tests of the Montage workload generator across
//! request sizes and seeds.

use mcloud_montage::{generate, overlap_count, overlap_pairs, MosaicConfig};

const CASES: u64 = 32;

/// Deterministic per-case value in `[lo, hi)`.
fn param(case: u64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * (case as f64 + 0.5) / CASES as f64
}

/// A well-mixed per-case seed (SplitMix64 finalizer).
fn seed(case: u64) -> u64 {
    let mut z = case.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The structural count formulas hold for any degree: tasks = 2N+D+6,
/// files = 5N+D+7.
#[test]
fn count_formulas_hold() {
    for case in 0..CASES {
        let deg = param(case, 0.3, 5.0);
        let cfg = MosaicConfig::new(deg).seed(seed(case));
        let wf = generate(&cfg);
        assert_eq!(wf.num_tasks(), cfg.expected_tasks(), "case {case}");
        assert_eq!(wf.num_files(), cfg.expected_files(), "case {case}");
        let n = cfg.plates() as usize;
        let d = overlap_count(cfg.side()) as usize;
        assert_eq!(wf.num_tasks(), 2 * n + d + 6, "case {case}");
    }
}

/// Structure is seed-independent; only runtimes/sizes jitter, and within
/// their configured bands.
#[test]
fn jitter_stays_in_band() {
    for case in 0..CASES {
        let deg = [0.5f64, 1.0, 2.0][(case % 3) as usize];
        let base = generate(&MosaicConfig::new(deg).seed(0));
        let other = generate(&MosaicConfig::new(deg).seed(seed(case)));
        assert_eq!(base.num_tasks(), other.num_tasks(), "case {case}");
        assert_eq!(base.depth(), other.depth(), "case {case}");
        for (a, b) in base.tasks().iter().zip(other.tasks()) {
            assert_eq!(&a.name, &b.name, "case {case}");
            assert_eq!(&a.module, &b.module, "case {case}");
            // Runtime jitter is +-15% around the same mean.
            let ratio = a.runtime_s / b.runtime_s;
            assert!(
                (0.7..=1.43).contains(&ratio),
                "case {case} {}: {ratio}",
                a.name
            );
        }
        // Totals stay within a band of each other (wider for the small
        // 0.5-degree workflow, whose wide levels hold only ~16 tasks).
        let rt_ratio = base.total_runtime_s() / other.total_runtime_s();
        assert!(
            (0.90..=1.11).contains(&rt_ratio),
            "case {case}: ratio {rt_ratio}"
        );
    }
}

/// Workflows grow monotonically with request size: more tasks, more data,
/// more total runtime.
#[test]
fn monotone_in_degrees() {
    for case in 0..CASES {
        let lo = param(case, 0.4, 2.0);
        let hi = lo + param(CASES - 1 - case, 0.5, 2.0);
        let small = generate(&MosaicConfig::new(lo));
        let large = generate(&MosaicConfig::new(hi));
        assert!(large.num_tasks() >= small.num_tasks(), "case {case}");
        assert!(large.total_bytes() > small.total_bytes(), "case {case}");
        assert!(
            large.total_runtime_s() > small.total_runtime_s(),
            "case {case}"
        );
    }
}

/// Every generated workflow has the canonical Montage shape: 9 levels,
/// mProject at level 1, mJPEG at level 9, single mosaic deliverable.
#[test]
fn shape_is_canonical() {
    for case in 0..CASES {
        let deg = param(case, 0.3, 4.5);
        let wf = generate(&MosaicConfig::new(deg).seed(seed(case)));
        assert_eq!(wf.depth(), 9, "case {case}");
        let levels = wf.levels();
        for t in wf.task_ids() {
            let task = wf.task(t);
            let expect = match task.module.as_str() {
                "mProject" => 1,
                "mDiffFit" => 2,
                "mConcatFit" => 3,
                "mBgModel" => 4,
                "mBackground" => 5,
                "mImgtbl" => 6,
                "mAdd" => 7,
                "mShrink" => 8,
                "mJPEG" => 9,
                other => panic!("case {case}: unexpected module {other}"),
            };
            assert_eq!(levels[t.index()], expect, "case {case} {}", task.name);
        }
        let delivered = wf.staged_out_files();
        assert_eq!(delivered.len(), 2, "case {case}"); // mosaic + jpeg
    }
}

/// Overlap pairs remain unique valid neighbor pairs at any side.
#[test]
fn overlap_graph_valid() {
    for side in 2u32..40 {
        let pairs = overlap_pairs(side);
        assert_eq!(pairs.len() as u32, overlap_count(side), "side {side}");
        let mut seen = std::collections::HashSet::new();
        for (a, b) in &pairs {
            assert!(seen.insert((a.index(side), b.index(side))), "side {side}");
            let dr = b.row as i64 - a.row as i64;
            let dc = b.col as i64 - a.col as i64;
            assert!(matches!((dr, dc), (0, 1) | (1, 0) | (1, 1)), "side {side}");
        }
    }
}

/// The CCR falls in a narrow, size-stable band: the paper's Montage is
/// compute-heavy (CCR ~ 0.05) at every scale we generate.
#[test]
fn ccr_band_is_stable() {
    for case in 0..CASES {
        let deg = param(case, 0.5, 4.5);
        let wf = generate(&MosaicConfig::new(deg));
        let ccr = wf.ccr_at_link(10e6);
        assert!((0.03..=0.08).contains(&ccr), "CCR {ccr} at {deg} deg");
    }
}
