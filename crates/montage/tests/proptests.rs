//! Property-based tests of the Montage workload generator across request
//! sizes and seeds.

use mcloud_montage::{generate, overlap_count, overlap_pairs, MosaicConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The structural count formulas hold for any degree: tasks = 2N+D+6,
    /// files = 5N+D+7.
    #[test]
    fn count_formulas_hold(deg in 0.3f64..5.0, seed in any::<u64>()) {
        let cfg = MosaicConfig::new(deg).seed(seed);
        let wf = generate(&cfg);
        prop_assert_eq!(wf.num_tasks(), cfg.expected_tasks());
        prop_assert_eq!(wf.num_files(), cfg.expected_files());
        let n = cfg.plates() as usize;
        let d = overlap_count(cfg.side()) as usize;
        prop_assert_eq!(wf.num_tasks(), 2 * n + d + 6);
    }

    /// Structure is seed-independent; only runtimes/sizes jitter, and
    /// within their configured bands.
    #[test]
    fn jitter_stays_in_band(deg in prop::sample::select(vec![0.5f64, 1.0, 2.0]), seed in any::<u64>()) {
        let base = generate(&MosaicConfig::new(deg).seed(0));
        let other = generate(&MosaicConfig::new(deg).seed(seed));
        prop_assert_eq!(base.num_tasks(), other.num_tasks());
        prop_assert_eq!(base.depth(), other.depth());
        for (a, b) in base.tasks().iter().zip(other.tasks()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.module, &b.module);
            // Runtime jitter is +-15% around the same mean.
            let ratio = a.runtime_s / b.runtime_s;
            prop_assert!((0.7..=1.43).contains(&ratio), "{}: {ratio}", a.name);
        }
        // Totals stay within a band of each other (wider for the small
        // 0.5-degree workflow, whose wide levels hold only ~16 tasks).
        let rt_ratio = base.total_runtime_s() / other.total_runtime_s();
        prop_assert!((0.90..=1.11).contains(&rt_ratio), "ratio {rt_ratio}");
    }

    /// Workflows grow monotonically with request size: more tasks, more
    /// data, more total runtime.
    #[test]
    fn monotone_in_degrees(lo in 0.4f64..2.0, delta in 0.5f64..2.0) {
        let hi = lo + delta;
        let small = generate(&MosaicConfig::new(lo));
        let large = generate(&MosaicConfig::new(hi));
        prop_assert!(large.num_tasks() >= small.num_tasks());
        prop_assert!(large.total_bytes() > small.total_bytes());
        prop_assert!(large.total_runtime_s() > small.total_runtime_s());
    }

    /// Every generated workflow has the canonical Montage shape: 9 levels,
    /// mProject at level 1, mJPEG at level 9, single mosaic deliverable.
    #[test]
    fn shape_is_canonical(deg in 0.3f64..4.5, seed in any::<u64>()) {
        let wf = generate(&MosaicConfig::new(deg).seed(seed));
        prop_assert_eq!(wf.depth(), 9);
        let levels = wf.levels();
        for t in wf.task_ids() {
            let task = wf.task(t);
            let expect = match task.module.as_str() {
                "mProject" => 1,
                "mDiffFit" => 2,
                "mConcatFit" => 3,
                "mBgModel" => 4,
                "mBackground" => 5,
                "mImgtbl" => 6,
                "mAdd" => 7,
                "mShrink" => 8,
                "mJPEG" => 9,
                other => return Err(TestCaseError::fail(format!("module {other}"))),
            };
            prop_assert_eq!(levels[t.index()], expect, "{}", task.name);
        }
        let delivered = wf.staged_out_files();
        prop_assert_eq!(delivered.len(), 2); // mosaic + jpeg
    }

    /// Overlap pairs remain unique valid neighbor pairs at any side.
    #[test]
    fn overlap_graph_valid(side in 2u32..40) {
        let pairs = overlap_pairs(side);
        prop_assert_eq!(pairs.len() as u32, overlap_count(side));
        let mut seen = std::collections::HashSet::new();
        for (a, b) in &pairs {
            prop_assert!(seen.insert((a.index(side), b.index(side))));
            let dr = b.row as i64 - a.row as i64;
            let dc = b.col as i64 - a.col as i64;
            prop_assert!(matches!((dr, dc), (0, 1) | (1, 0) | (1, 1)));
        }
    }

    /// The CCR falls in a narrow, size-stable band: the paper's Montage is
    /// compute-heavy (CCR ~ 0.05) at every scale we generate.
    #[test]
    fn ccr_band_is_stable(deg in 0.5f64..4.5) {
        let wf = generate(&MosaicConfig::new(deg));
        let ccr = wf.ccr_at_link(10e6);
        prop_assert!((0.03..=0.08).contains(&ccr), "CCR {ccr} at {deg} deg");
    }
}
