//! Builds Montage mosaic workflows with the paper's structure and
//! calibrated runtimes/sizes.
//!
//! The generated DAG follows the Montage pipeline the paper describes in
//! Section 2 (reproject, background-rectify, co-add):
//!
//! ```text
//! level 1: mProject_i      one per input plate (reads plate + header)
//! level 2: mDiffFit_k      one per overlapping plate pair
//! level 3: mConcatFit      gathers all plane fits
//! level 4: mBgModel        solves global background corrections
//! level 5: mBackground_i   one per plate (applies corrections)
//! level 6: mImgtbl         builds the image metadata table
//! level 7: mAdd            co-adds into the final mosaic (deliverable)
//! level 8: mShrink         down-samples the mosaic
//! level 9: mJPEG           renders a preview (deliverable)
//! ```

use mcloud_simkit::SimRng;

use mcloud_dag::{Workflow, WorkflowBuilder};

use crate::calib;
use crate::grid;

/// The nine Montage task classes in pipeline (= workflow level) order.
///
/// This is the canonical class list profilers and reports key on; every
/// task the generator emits carries one of these module names.
pub const MONTAGE_PIPELINE: [&str; 9] = [
    "mProject",
    "mDiffFit",
    "mConcatFit",
    "mBgModel",
    "mBackground",
    "mImgtbl",
    "mAdd",
    "mShrink",
    "mJPEG",
];

/// The 1-based pipeline stage (= workflow level) of a Montage task class,
/// or `None` for a module name outside the pipeline.
pub fn pipeline_stage(module: &str) -> Option<u32> {
    MONTAGE_PIPELINE
        .iter()
        .position(|&m| m == module)
        .map(|i| i as u32 + 1)
}

/// 2MASS survey band (affects naming only; the three bands have the same
/// plate geometry, which is why the whole-sky estimate is `3 x 1,300`
/// plates across J/H/K).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Band {
    /// J band (1.25 um).
    #[default]
    J,
    /// H band (1.65 um).
    H,
    /// K_s band (2.17 um).
    K,
}

impl Band {
    /// Short lowercase tag used in file names.
    pub fn tag(&self) -> &'static str {
        match self {
            Band::J => "j",
            Band::H => "h",
            Band::K => "k",
        }
    }
}

/// Parameters of one mosaic request (the input to the paper's service: a
/// sky region, a size in square degrees, and the archive/band).
#[derive(Debug, Clone, PartialEq)]
pub struct MosaicConfig {
    /// Mosaic side length in degrees (1.0, 2.0, 4.0 in the paper).
    pub degrees: f64,
    /// Survey band.
    pub band: Band,
    /// Sky region label (the paper uses M17).
    pub region: String,
    /// Seed for the deterministic runtime/size jitter.
    pub seed: u64,
}

impl MosaicConfig {
    /// A mosaic of the given size with the paper's defaults (M17, J band,
    /// fixed seed).
    pub fn new(degrees: f64) -> Self {
        MosaicConfig {
            degrees,
            band: Band::J,
            region: "M17".to_string(),
            seed: 2008_1115,
        }
    }

    /// Sets the survey band.
    pub fn band(mut self, band: Band) -> Self {
        self.band = band;
        self
    }

    /// Sets the sky region label.
    pub fn region(mut self, region: impl Into<String>) -> Self {
        self.region = region.into();
        self
    }

    /// Sets the jitter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Input plates per grid side.
    pub fn side(&self) -> u32 {
        calib::grid_side(self.degrees)
    }

    /// Number of input plates.
    pub fn plates(&self) -> u32 {
        let s = self.side();
        s * s
    }

    /// Exact number of tasks the generated workflow will have
    /// (`2N + D + 6`): 203 / 731 / 3,027 for the canonical sizes.
    pub fn expected_tasks(&self) -> usize {
        let n = self.plates() as usize;
        let d = grid::overlap_count(self.side()) as usize;
        2 * n + d + 6
    }

    /// Exact number of distinct files (`5N + D + 7`).
    pub fn expected_files(&self) -> usize {
        let n = self.plates() as usize;
        let d = grid::overlap_count(self.side()) as usize;
        5 * n + d + 7
    }
}

/// Generates the workflow for a mosaic request.
pub fn generate(cfg: &MosaicConfig) -> Workflow {
    let side = cfg.side();
    let n = cfg.plates();
    let pairs = grid::overlap_pairs(side);
    let phi = calib::runtime_factor(cfg.degrees);
    let mut rng = SimRng::new(cfg.seed);

    let mut b = WorkflowBuilder::new(format!(
        "montage_{}_{}deg_{}",
        cfg.region,
        cfg.degrees,
        cfg.band.tag()
    ));

    let jit_rt = |rng: &mut SimRng| 1.0 + rng.f64_in(-calib::RUNTIME_JITTER, calib::RUNTIME_JITTER);
    let jit_sz = |rng: &mut SimRng| 1.0 + rng.f64_in(-calib::SIZE_JITTER, calib::SIZE_JITTER);
    let scaled = |bytes: u64, j: f64| ((bytes as f64 * j).round() as u64).max(1);

    // --- files ------------------------------------------------------------
    let hdr = b.file(format!("{}.hdr", cfg.region), calib::HEADER_BYTES);
    let mut raw = Vec::with_capacity(n as usize);
    let mut proj = Vec::with_capacity(n as usize);
    let mut area = Vec::with_capacity(n as usize);
    let mut corr = Vec::with_capacity(n as usize);
    let mut carea = Vec::with_capacity(n as usize);
    for i in 0..n {
        let j = jit_sz(&mut rng);
        raw.push(b.file(
            format!("2mass_{}_{}_{i:04}.fits", cfg.band.tag(), cfg.region),
            scaled(calib::RAW_IMAGE_BYTES, j),
        ));
        proj.push(b.file(
            format!("proj_{i:04}.fits"),
            scaled(calib::PROJECTED_IMAGE_BYTES, j),
        ));
        area.push(b.file(
            format!("proj_{i:04}_area.fits"),
            scaled(calib::AREA_IMAGE_BYTES, j),
        ));
        corr.push(b.file(
            format!("corr_{i:04}.fits"),
            scaled(calib::CORRECTED_IMAGE_BYTES, j),
        ));
        carea.push(b.file(
            format!("corr_{i:04}_area.fits"),
            scaled(calib::CORRECTED_AREA_BYTES, j),
        ));
    }
    let fits: Vec<_> = (0..pairs.len())
        .map(|k| {
            let j = jit_sz(&mut rng);
            b.file(format!("fit_{k:05}.tbl"), scaled(calib::FIT_BYTES, j))
        })
        .collect();
    let fits_tbl = b.file(
        "fits.tbl",
        calib::FITS_TABLE_PER_DIFF_BYTES * pairs.len() as u64,
    );
    let corrections_tbl = b.file(
        "corrections.tbl",
        calib::CORRECTIONS_PER_IMAGE_BYTES * n as u64,
    );
    let newimg_tbl = b.file("newimg.tbl", calib::IMGTBL_PER_IMAGE_BYTES * n as u64);
    let mosaic_bytes = calib::mosaic_bytes(cfg.degrees);
    let mosaic = b.file(format!("mosaic_{}.fits", cfg.region), mosaic_bytes);
    let shrunk = b.file(
        format!("mosaic_{}_small.fits", cfg.region),
        (mosaic_bytes / calib::SHRINK_DIVISOR).max(1),
    );
    let jpeg = b.file(
        format!("mosaic_{}.jpg", cfg.region),
        (mosaic_bytes / calib::JPEG_DIVISOR).max(1),
    );
    b.mark_deliverable(mosaic);

    // --- tasks, level by level ---------------------------------------------
    for i in 0..n as usize {
        let rt = calib::MPROJECT_RUNTIME_S * phi * jit_rt(&mut rng);
        b.add_task(
            format!("mProject_{i:04}"),
            "mProject",
            rt,
            &[raw[i], hdr],
            &[proj[i], area[i]],
        )
        .expect("generator produces a valid mProject");
    }
    for (k, (pa, pb)) in pairs.iter().enumerate() {
        let (ia, ib) = (pa.index(side) as usize, pb.index(side) as usize);
        let rt = calib::MDIFFFIT_RUNTIME_S * phi * jit_rt(&mut rng);
        b.add_task(
            format!("mDiffFit_{k:05}"),
            "mDiffFit",
            rt,
            &[proj[ia], area[ia], proj[ib], area[ib]],
            &[fits[k]],
        )
        .expect("generator produces a valid mDiffFit");
    }
    b.add_task(
        "mConcatFit",
        "mConcatFit",
        calib::MCONCATFIT_RUNTIME_S * cfg.degrees,
        &fits,
        &[fits_tbl],
    )
    .expect("generator produces a valid mConcatFit");
    b.add_task(
        "mBgModel",
        "mBgModel",
        calib::MBGMODEL_RUNTIME_S * cfg.degrees.sqrt(),
        &[fits_tbl],
        &[corrections_tbl],
    )
    .expect("generator produces a valid mBgModel");
    for i in 0..n as usize {
        let rt = calib::MBACKGROUND_RUNTIME_S * phi * jit_rt(&mut rng);
        b.add_task(
            format!("mBackground_{i:04}"),
            "mBackground",
            rt,
            &[proj[i], area[i], corrections_tbl],
            &[corr[i], carea[i]],
        )
        .expect("generator produces a valid mBackground");
    }
    b.add_task(
        "mImgtbl",
        "mImgtbl",
        calib::MIMGTBL_RUNTIME_S * cfg.degrees,
        &corr,
        &[newimg_tbl],
    )
    .expect("generator produces a valid mImgtbl");
    let mut add_inputs: Vec<_> = corr.iter().chain(carea.iter()).copied().collect();
    add_inputs.push(newimg_tbl);
    add_inputs.push(hdr);
    b.add_task(
        "mAdd",
        "mAdd",
        calib::MADD_RUNTIME_S * cfg.degrees,
        &add_inputs,
        &[mosaic],
    )
    .expect("generator produces a valid mAdd");
    b.add_task(
        "mShrink",
        "mShrink",
        calib::MSHRINK_RUNTIME_S * cfg.degrees,
        &[mosaic],
        &[shrunk],
    )
    .expect("generator produces a valid mShrink");
    b.add_task(
        "mJPEG",
        "mJPEG",
        calib::MJPEG_RUNTIME_S * cfg.degrees,
        &[shrunk],
        &[jpeg],
    )
    .expect("generator produces a valid mJPEG");

    b.build().expect("generator produces an acyclic workflow")
}

/// The paper's Montage 1-degree workflow (203 tasks).
pub fn montage_1_degree() -> Workflow {
    generate(&MosaicConfig::new(1.0))
}

/// The paper's Montage 2-degree workflow (731 tasks).
pub fn montage_2_degree() -> Workflow {
    generate(&MosaicConfig::new(2.0))
}

/// The paper's Montage 4-degree workflow (3,027 tasks).
pub fn montage_4_degree() -> Workflow {
    generate(&MosaicConfig::new(4.0))
}

/// Synthetic 8-degree scale-up (12,149 tasks): beyond the paper's largest
/// run, at the mosaic sizes of the follow-on EC2 studies (Juve et al.;
/// Berriman et al.). Same generator and calibration as the canonical
/// sizes, extrapolated.
pub fn montage_8_degree() -> Workflow {
    generate(&MosaicConfig::new(8.0))
}

/// Synthetic 16-degree scale-up (48,897 tasks): a stress workload for
/// engine-throughput benchmarking at production scale.
pub fn montage_16_degree() -> Workflow {
    generate(&MosaicConfig::new(16.0))
}

/// The paper's Figure 3 pedagogical workflow: seven tasks, one external
/// input `a`, and net outputs `g` and `h`. Used in Section 3 to explain the
/// three data-management modes.
pub fn paper_figure3() -> Workflow {
    let mb = 1_000_000u64;
    let mut b = WorkflowBuilder::new("paper_figure3");
    let a = b.file("a", 10 * mb);
    let fb = b.file("b", 10 * mb);
    let c1 = b.file("c1", 10 * mb);
    let c2 = b.file("c2", 10 * mb);
    let d = b.file("d", 10 * mb);
    let e = b.file("e", 10 * mb);
    let f = b.file("f", 10 * mb);
    let h = b.file("h", 10 * mb);
    let g = b.file("g", 10 * mb);
    b.add_task("task0", "stage", 60.0, &[a], &[fb]).unwrap();
    b.add_task("task1", "stage", 60.0, &[fb], &[c1]).unwrap();
    b.add_task("task2", "stage", 60.0, &[fb], &[c2]).unwrap();
    b.add_task("task3", "stage", 60.0, &[c1], &[d]).unwrap();
    b.add_task("task4", "stage", 60.0, &[c1], &[e]).unwrap();
    b.add_task("task5", "stage", 60.0, &[c2], &[f, h]).unwrap();
    b.add_task("task6", "gather", 60.0, &[d, e, f], &[g])
        .unwrap();
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_generated_module_maps_to_its_pipeline_stage() {
        let wf = montage_1_degree();
        let levels = wf.levels();
        for t in wf.task_ids() {
            let task = wf.task(t);
            let stage = pipeline_stage(&task.module)
                .unwrap_or_else(|| panic!("unknown module {}", task.module));
            assert_eq!(stage, levels[t.index()], "{}", task.name);
        }
        assert_eq!(pipeline_stage("mProject"), Some(1));
        assert_eq!(pipeline_stage("mJPEG"), Some(9));
        assert_eq!(pipeline_stage("mystery"), None);
        assert_eq!(MONTAGE_PIPELINE.len(), 9);
    }

    #[test]
    fn canonical_task_counts_match_paper() {
        assert_eq!(montage_1_degree().num_tasks(), 203);
        assert_eq!(montage_2_degree().num_tasks(), 731);
        assert_eq!(montage_4_degree().num_tasks(), 3027);
        assert_eq!(montage_8_degree().num_tasks(), 12_149);
        assert_eq!(montage_16_degree().num_tasks(), 48_897);
    }

    #[test]
    fn expected_counts_agree_with_generation() {
        for deg in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0] {
            let cfg = MosaicConfig::new(deg);
            let wf = generate(&cfg);
            assert_eq!(wf.num_tasks(), cfg.expected_tasks(), "{deg} deg tasks");
            assert_eq!(wf.num_files(), cfg.expected_files(), "{deg} deg files");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&MosaicConfig::new(1.0));
        let b = generate(&MosaicConfig::new(1.0));
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert!((a.total_runtime_s() - b.total_runtime_s()).abs() < 1e-9);
        let c = generate(&MosaicConfig::new(1.0).seed(7));
        assert_ne!(a.total_bytes(), c.total_bytes(), "seed must matter");
    }

    #[test]
    fn workflow_has_nine_levels() {
        let wf = montage_1_degree();
        assert_eq!(wf.depth(), 9);
        let widths = wf.level_widths();
        // mProject, mDiffFit, concat, bgmodel, mBackground, imgtbl, add,
        // shrink, jpeg.
        assert_eq!(widths, vec![49, 99, 1, 1, 49, 1, 1, 1, 1]);
    }

    #[test]
    fn level_modules_are_homogeneous() {
        // "all the tasks at a particular level are invocations of the same
        // routine" (paper, Section 2).
        let wf = montage_1_degree();
        let levels = wf.levels();
        let mut by_level: std::collections::HashMap<u32, Vec<&str>> = Default::default();
        for t in wf.task_ids() {
            by_level
                .entry(levels[t.index()])
                .or_default()
                .push(wf.task(t).module.as_str());
        }
        for (level, modules) in by_level {
            assert!(
                modules.windows(2).all(|w| w[0] == w[1]),
                "level {level} mixes modules: {modules:?}"
            );
        }
    }

    #[test]
    fn external_inputs_are_plates_and_header() {
        let wf = montage_1_degree();
        let ext = wf.external_inputs();
        assert_eq!(ext.len(), 50); // 49 plates + header
        let names: Vec<&str> = ext.iter().map(|f| wf.file(*f).name.as_str()).collect();
        assert!(names.iter().any(|n| n.ends_with(".hdr")));
        assert_eq!(names.iter().filter(|n| n.starts_with("2mass_")).count(), 49);
    }

    #[test]
    fn staged_out_is_mosaic_and_jpeg() {
        let wf = montage_1_degree();
        let mut names: Vec<String> = wf
            .staged_out_files()
            .iter()
            .map(|f| wf.file(*f).name.clone())
            .collect();
        names.sort();
        assert_eq!(names, vec!["mosaic_M17.fits", "mosaic_M17.jpg"]);
    }

    #[test]
    fn mosaic_size_matches_paper() {
        let wf = montage_2_degree();
        let mosaic = wf
            .file_ids()
            .find(|f| wf.file(*f).name == "mosaic_M17.fits")
            .unwrap();
        assert_eq!(wf.file(mosaic).bytes, 557_900_000);
    }

    #[test]
    fn total_runtime_tracks_paper_cpu_costs() {
        // On-demand CPU cost = total_runtime * $0.10/hr. Paper: $0.56,
        // $2.03, $8.40. Accept a +-10% calibration band.
        let cases = [(montage_1_degree(), 0.56), (montage_2_degree(), 2.03)];
        for (wf, dollars) in cases {
            let cost = wf.total_runtime_s() / 3600.0 * 0.10;
            assert!(
                (cost - dollars).abs() / dollars < 0.10,
                "expected ~${dollars}, modeled ${cost:.3}"
            );
        }
    }

    #[test]
    fn ccr_is_in_the_papers_band() {
        // Paper's table: 0.053 / 0.053 / 0.045 at 10 Mbps. Accept 0.04-0.06.
        for (wf, label) in [(montage_1_degree(), "1deg"), (montage_2_degree(), "2deg")] {
            let ccr = wf.ccr_at_link(10_000_000.0);
            assert!((0.04..=0.06).contains(&ccr), "{label}: CCR {ccr}");
        }
    }

    #[test]
    fn tasks_have_small_runtimes() {
        // "The tasks ... have a small runtime of at most a few minutes."
        let wf = montage_1_degree();
        for t in wf.tasks() {
            assert!(
                t.runtime_s <= 6.0 * 60.0,
                "{} runs {:.0}s",
                t.name,
                t.runtime_s
            );
        }
    }

    #[test]
    fn figure3_matches_paper_description() {
        let wf = paper_figure3();
        assert_eq!(wf.num_tasks(), 7);
        // "Each task takes one input file and produces one output file
        // except for task 6 that takes three input files."
        for t in wf.task_ids() {
            let task = wf.task(t);
            if task.name == "task6" {
                assert_eq!(task.inputs.len(), 3);
            } else {
                assert_eq!(task.inputs.len(), 1);
            }
        }
        assert_eq!(wf.staged_out_files().len(), 2); // g and h
    }

    #[test]
    fn band_and_region_affect_naming() {
        let wf = generate(&MosaicConfig::new(1.0).band(Band::K).region("Orion"));
        assert!(wf.name().contains("Orion"));
        assert!(wf.name().ends_with("_k"));
        assert!(wf.files().iter().any(|f| f.name.contains("2mass_k_Orion")));
    }
}
