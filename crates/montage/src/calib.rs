//! Calibration constants for the synthetic Montage workload.
//!
//! We do not have the paper's real mDAG traces (file sizes and runtimes
//! were "taken from real runs of the workflow"), so this module encodes a
//! parametric model fitted to every anchor number the paper prints. The
//! fit targets, all from Sections 5–6:
//!
//! | anchor                                   | paper        | this model |
//! |------------------------------------------|--------------|------------|
//! | tasks (1°/2°/4°)                         | 203/731/3027 | exact      |
//! | CPU cost, on-demand (1°/2°/4°)           | $0.56/2.03/8.40 | ~$0.54/2.00/8.54 |
//! | serial makespan (1°/2°/4°)               | 5.5/20.5/85 h | ~5.5/20.2/86 h |
//! | mosaic size (1°/2°/4°)                   | 173.46 MB/557.9 MB/2.229 GB | exact |
//! | CCR at 10 Mbps (1°/2°/4°)                | 0.053/0.053/0.045 | ~0.051/0.048/0.045 |
//!
//! Runtimes of the wide levels (`mProject`, `mDiffFit`, `mBackground`)
//! carry a mild superlinear factor `degrees^RUNTIME_SUPERLINEARITY`
//! reflecting the paper's slightly faster-than-area growth in total CPU
//! time; the serial "single" tasks are kept short so the critical path
//! stays compatible with the paper's 128-processor makespans.

/// Grid side length per mosaic degree: `side = ceil(PLATES_PER_DEGREE * d)`.
/// Gives the canonical 7/13/26 grids (49/169/676 input plates) for the
/// 1°/2°/4° workflows.
pub const PLATES_PER_DEGREE: f64 = 6.5;

/// Exponent of the mild per-task runtime growth with mosaic degree.
pub const RUNTIME_SUPERLINEARITY: f64 = 0.09;

/// Base runtime of one `mProject` reprojection, seconds.
pub const MPROJECT_RUNTIME_S: f64 = 280.0;

/// Base runtime of one `mDiffFit` plane fit, seconds.
pub const MDIFFFIT_RUNTIME_S: f64 = 20.0;

/// Base runtime of one `mBackground` correction, seconds.
pub const MBACKGROUND_RUNTIME_S: f64 = 70.0;

/// `mConcatFit` runtime, seconds, scaled linearly by degree.
pub const MCONCATFIT_RUNTIME_S: f64 = 30.0;

/// `mBgModel` runtime, seconds, scaled by `sqrt(degree)`.
pub const MBGMODEL_RUNTIME_S: f64 = 120.0;

/// `mImgtbl` runtime, seconds, scaled linearly by degree.
pub const MIMGTBL_RUNTIME_S: f64 = 30.0;

/// `mAdd` co-addition runtime, seconds, scaled linearly by degree.
pub const MADD_RUNTIME_S: f64 = 180.0;

/// `mShrink` runtime, seconds, scaled linearly by degree.
pub const MSHRINK_RUNTIME_S: f64 = 60.0;

/// `mJPEG` runtime, seconds, scaled linearly by degree.
pub const MJPEG_RUNTIME_S: f64 = 15.0;

/// Raw 2MASS input plate size, bytes (compressed FITS, ~2 MB).
pub const RAW_IMAGE_BYTES: u64 = 2_000_000;

/// Template header file shared by all `mProject` tasks and `mAdd`, bytes.
pub const HEADER_BYTES: u64 = 10_000;

/// Reprojected image produced by `mProject`, bytes.
pub const PROJECTED_IMAGE_BYTES: u64 = 6_700_000;

/// Area-weight image accompanying each reprojection, bytes.
pub const AREA_IMAGE_BYTES: u64 = 3_300_000;

/// Plane-fit parameter file produced by each `mDiffFit`, bytes.
pub const FIT_BYTES: u64 = 2_000;

/// Per-diff contribution to the concatenated fits table, bytes.
pub const FITS_TABLE_PER_DIFF_BYTES: u64 = 2_000;

/// Per-image contribution to the background-corrections table, bytes.
pub const CORRECTIONS_PER_IMAGE_BYTES: u64 = 100;

/// Background-corrected image produced by `mBackground`, bytes.
pub const CORRECTED_IMAGE_BYTES: u64 = 6_700_000;

/// Corrected area-weight image, bytes.
pub const CORRECTED_AREA_BYTES: u64 = 3_300_000;

/// Per-image contribution to the `mImgtbl` metadata table, bytes.
pub const IMGTBL_PER_IMAGE_BYTES: u64 = 200;

/// Shrunk preview = mosaic / this factor.
pub const SHRINK_DIVISOR: u64 = 100;

/// JPEG preview = mosaic / this factor.
pub const JPEG_DIVISOR: u64 = 400;

/// Mosaic size for non-canonical degrees: `MOSAIC_BYTES_PER_SQ_DEG * d^2`.
pub const MOSAIC_BYTES_PER_SQ_DEG: f64 = 139.4e6;

/// Relative half-width of the uniform runtime jitter on wide-level tasks.
pub const RUNTIME_JITTER: f64 = 0.15;

/// Relative half-width of the uniform size jitter on per-image files.
pub const SIZE_JITTER: f64 = 0.10;

/// The paper's mosaic sizes for the canonical workflows, bytes
/// (173.46 MB, 557.9 MB, 2.229 GB).
pub fn mosaic_bytes(degrees: f64) -> u64 {
    const CANONICAL: [(f64, u64); 3] =
        [(1.0, 173_460_000), (2.0, 557_900_000), (4.0, 2_229_000_000)];
    for (d, bytes) in CANONICAL {
        if (degrees - d).abs() < 1e-9 {
            return bytes;
        }
    }
    (MOSAIC_BYTES_PER_SQ_DEG * degrees * degrees).round() as u64
}

/// Grid side length for a mosaic of `degrees` on a side (min 2 so that the
/// overlap graph is non-trivial).
pub fn grid_side(degrees: f64) -> u32 {
    assert!(
        degrees.is_finite() && degrees > 0.0,
        "mosaic size must be positive, got {degrees}"
    );
    ((PLATES_PER_DEGREE * degrees).ceil() as u32).max(2)
}

/// Number of diagonal overlap edges for a grid of the given side. Exact for
/// the canonical 7/13/26 grids (so the total task counts are exactly
/// 203/731/3027); interpolated for other sides.
pub fn diagonal_count(side: u32) -> u32 {
    match side {
        7 => 15,
        13 => 75,
        26 => 369,
        s => ((s.saturating_sub(1).pow(2)) as f64 * 0.55).round() as u32,
    }
}

/// The per-task runtime growth factor for a `degrees`-sized mosaic.
pub fn runtime_factor(degrees: f64) -> f64 {
    degrees.powf(RUNTIME_SUPERLINEARITY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_grids() {
        assert_eq!(grid_side(1.0), 7);
        assert_eq!(grid_side(2.0), 13);
        assert_eq!(grid_side(4.0), 26);
        assert_eq!(grid_side(0.1), 2); // floor of 2
        assert_eq!(grid_side(6.0), 39);
    }

    #[test]
    fn canonical_task_counts_add_up() {
        // total = 2*N + D + 6 with N = side^2, D = 2*side*(side-1) + diag.
        for (side, expect) in [(7u32, 203u32), (13, 731), (26, 3027)] {
            let n = side * side;
            let d = 2 * side * (side - 1) + diagonal_count(side);
            assert_eq!(2 * n + d + 6, expect, "side {side}");
        }
    }

    #[test]
    fn mosaic_sizes_match_paper() {
        assert_eq!(mosaic_bytes(1.0), 173_460_000);
        assert_eq!(mosaic_bytes(2.0), 557_900_000);
        assert_eq!(mosaic_bytes(4.0), 2_229_000_000);
        // Non-canonical sizes follow the ~139.4 MB/deg^2 trend.
        let m3 = mosaic_bytes(3.0);
        assert!((m3 as f64 - 139.4e6 * 9.0).abs() < 1e3);
    }

    #[test]
    fn runtime_factor_is_mildly_superlinear() {
        assert!((runtime_factor(1.0) - 1.0).abs() < 1e-12);
        assert!(runtime_factor(2.0) > 1.0 && runtime_factor(2.0) < 1.1);
        assert!(runtime_factor(4.0) > runtime_factor(2.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn grid_side_rejects_nonpositive() {
        grid_side(0.0);
    }
}
