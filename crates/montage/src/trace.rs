//! Measured-trace overrides.
//!
//! The paper's simulator was driven by *measured* task runtimes and file
//! sizes "taken from real runs of the workflow". This module replays that
//! workflow: generate the DAG synthetically, then overlay measured values
//! from simple two-column CSVs — so anyone holding real Montage run logs
//! can reproduce the paper's exact pipeline with this crate.
//!
//! CSV format: one `name,value` pair per line; blank lines and `#`
//! comments ignored.

use std::collections::HashMap;

use mcloud_dag::{TaskId, Workflow, WorkflowBuilder};

/// Applies per-task runtime overrides (seconds) from CSV.
///
/// Every named task must exist; unknown names are reported so typos in a
/// trace file never pass silently.
pub fn apply_runtime_overrides(wf: &Workflow, csv: &str) -> Result<Workflow, String> {
    let overrides = parse_pairs(csv)?;
    let by_name: HashMap<&str, TaskId> = wf
        .task_ids()
        .map(|t| (wf.task(t).name.as_str(), t))
        .collect();
    for name in overrides.keys() {
        if !by_name.contains_key(name.as_str()) {
            return Err(format!("trace names unknown task '{name}'"));
        }
    }
    for (_, v) in overrides.iter() {
        if !(v.is_finite() && *v >= 0.0) {
            return Err(format!("invalid runtime override {v}"));
        }
    }
    rebuild(
        wf,
        |_, bytes| bytes,
        |name, runtime| overrides.get(name).copied().unwrap_or(runtime),
    )
}

/// Applies per-file size overrides (bytes) from CSV.
pub fn apply_size_overrides(wf: &Workflow, csv: &str) -> Result<Workflow, String> {
    let overrides = parse_pairs(csv)?;
    let known: std::collections::HashSet<&str> =
        wf.files().iter().map(|f| f.name.as_str()).collect();
    for (name, v) in overrides.iter() {
        if !known.contains(name.as_str()) {
            return Err(format!("trace names unknown file '{name}'"));
        }
        if !(v.is_finite() && *v >= 0.0) {
            return Err(format!("invalid size override {v}"));
        }
    }
    rebuild(
        wf,
        |name, bytes| overrides.get(name).map(|v| *v as u64).unwrap_or(bytes),
        |_, runtime| runtime,
    )
}

fn parse_pairs(csv: &str) -> Result<HashMap<String, f64>, String> {
    let mut out = HashMap::new();
    for (lineno, line) in csv.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .split_once(',')
            .ok_or_else(|| format!("line {}: expected 'name,value'", lineno + 1))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("line {}: '{}' is not a number", lineno + 1, value.trim()))?;
        if out.insert(name.trim().to_string(), value).is_some() {
            return Err(format!(
                "line {}: duplicate entry for '{}'",
                lineno + 1,
                name.trim()
            ));
        }
    }
    Ok(out)
}

/// Rebuilds a workflow with transformed sizes/runtimes, preserving
/// structure, deliverable flags, and control-only dependency edges.
fn rebuild(
    wf: &Workflow,
    size_of: impl Fn(&str, u64) -> u64,
    runtime_of: impl Fn(&str, f64) -> f64,
) -> Result<Workflow, String> {
    let mut b = WorkflowBuilder::new(wf.name());
    let ids: Vec<_> = wf
        .files()
        .iter()
        .map(|f| b.file(f.name.clone(), size_of(&f.name, f.bytes)))
        .collect();
    for (fid, meta) in ids.iter().zip(wf.files()) {
        if meta.deliverable {
            b.mark_deliverable(*fid);
        }
    }
    for t in wf.task_ids() {
        let task = wf.task(t);
        let inputs: Vec<_> = task.inputs.iter().map(|f| ids[f.index()]).collect();
        let outputs: Vec<_> = task.outputs.iter().map(|f| ids[f.index()]).collect();
        b.add_task(
            task.name.clone(),
            task.module.clone(),
            runtime_of(&task.name, task.runtime_s),
            &inputs,
            &outputs,
        )
        .map_err(|e| e.to_string())?;
    }
    // Preserve control-only edges (parents not implied by files).
    for c in wf.task_ids() {
        let implied: std::collections::HashSet<_> = wf
            .task(c)
            .inputs
            .iter()
            .filter_map(|f| wf.producer(*f))
            .collect();
        for &p in wf.parents(c) {
            if !implied.contains(&p) {
                b.add_control_edge(p, c);
            }
        }
    }
    b.build().map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, MosaicConfig};

    #[test]
    fn runtime_overrides_apply_and_preserve_the_rest() {
        let wf = generate(&MosaicConfig::new(0.5));
        let original_add = wf
            .tasks()
            .iter()
            .find(|t| t.name == "mAdd")
            .unwrap()
            .runtime_s;
        let csv = "# measured runtimes\nmAdd, 1234.5\nmShrink,7.25\n";
        let traced = apply_runtime_overrides(&wf, csv).unwrap();
        let get = |name: &str| {
            traced
                .tasks()
                .iter()
                .find(|t| t.name == name)
                .unwrap()
                .runtime_s
        };
        assert!((get("mAdd") - 1234.5).abs() < 1e-12);
        assert!((get("mShrink") - 7.25).abs() < 1e-12);
        assert_ne!(original_add, 1234.5);
        // Untouched tasks keep their generated runtimes; structure intact.
        assert_eq!(traced.num_tasks(), wf.num_tasks());
        assert_eq!(traced.levels(), wf.levels());
        assert_eq!(traced.total_bytes(), wf.total_bytes());
    }

    #[test]
    fn size_overrides_apply_by_file_name() {
        let wf = generate(&MosaicConfig::new(0.5));
        let mosaic_name = wf
            .files()
            .iter()
            .find(|f| f.name.starts_with("mosaic_") && f.name.ends_with(".fits"))
            .unwrap()
            .name
            .clone();
        let csv = format!("{mosaic_name},999000000\n");
        let traced = apply_size_overrides(&wf, &csv).unwrap();
        let got = traced
            .files()
            .iter()
            .find(|f| f.name == mosaic_name)
            .unwrap();
        assert_eq!(got.bytes, 999_000_000);
        assert!(got.deliverable, "flags preserved");
        assert!((traced.total_runtime_s() - wf.total_runtime_s()).abs() < 1e-9);
    }

    #[test]
    fn unknown_names_are_rejected() {
        let wf = generate(&MosaicConfig::new(0.5));
        assert!(apply_runtime_overrides(&wf, "mBogus,1\n")
            .unwrap_err()
            .contains("mBogus"));
        assert!(apply_size_overrides(&wf, "nope.fits,1\n")
            .unwrap_err()
            .contains("nope.fits"));
    }

    #[test]
    fn malformed_csv_is_rejected_with_line_numbers() {
        let wf = generate(&MosaicConfig::new(0.5));
        let err = apply_runtime_overrides(&wf, "mAdd 12\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = apply_runtime_overrides(&wf, "mAdd,twelve\n").unwrap_err();
        assert!(err.contains("not a number"), "{err}");
        let err = apply_runtime_overrides(&wf, "mAdd,1\nmAdd,2\n").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = apply_runtime_overrides(&wf, "mAdd,-5\n").unwrap_err();
        assert!(err.contains("invalid runtime"), "{err}");
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let wf = generate(&MosaicConfig::new(0.5));
        let traced = apply_runtime_overrides(&wf, "\n# header\n\nmJPEG, 2.0\n").unwrap();
        let jpeg = traced.tasks().iter().find(|t| t.name == "mJPEG").unwrap();
        assert!((jpeg.runtime_s - 2.0).abs() < 1e-12);
    }
}
