//! The overlap graph of input plates on a `side x side` grid.
//!
//! Montage fits background-difference planes between every pair of
//! *overlapping* reprojected images. On a regular survey grid each plate
//! overlaps its horizontal and vertical neighbors and (depending on the
//! survey geometry) some diagonal neighbors. We include all horizontal and
//! vertical pairs plus an evenly spread deterministic subset of diagonals
//! sized by [`calib::diagonal_count`], which reproduces the paper's exact
//! task counts for the canonical grids.
//!
//! [`calib::diagonal_count`]: crate::calib::diagonal_count

use crate::calib;

/// A plate position on the grid, in row-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Plate {
    /// Row, `0..side`.
    pub row: u32,
    /// Column, `0..side`.
    pub col: u32,
}

impl Plate {
    /// Row-major index of this plate.
    pub fn index(&self, side: u32) -> u32 {
        self.row * side + self.col
    }
}

/// Enumerates the overlapping plate pairs for a grid of the given side, in
/// a fixed deterministic order: all horizontal pairs, then all vertical
/// pairs, then the selected down-right diagonal pairs.
pub fn overlap_pairs(side: u32) -> Vec<(Plate, Plate)> {
    assert!(side >= 2, "overlap graph needs a side of at least 2");
    let mut pairs = Vec::new();
    // Horizontal neighbors.
    for r in 0..side {
        for c in 0..side - 1 {
            pairs.push((Plate { row: r, col: c }, Plate { row: r, col: c + 1 }));
        }
    }
    // Vertical neighbors.
    for r in 0..side - 1 {
        for c in 0..side {
            pairs.push((Plate { row: r, col: c }, Plate { row: r + 1, col: c }));
        }
    }
    // Evenly spread subset of the (side-1)^2 down-right diagonals.
    let total = (side - 1) * (side - 1);
    let want = calib::diagonal_count(side).min(total);
    let mut picked = 0u64;
    for i in 0..total as u64 {
        // Bresenham-style selection: pick index i when the running
        // proportion crosses the next integer.
        let below = i * want as u64 / total as u64;
        let above = (i + 1) * want as u64 / total as u64;
        if above > below {
            let r = (i as u32) / (side - 1);
            let c = (i as u32) % (side - 1);
            pairs.push((
                Plate { row: r, col: c },
                Plate {
                    row: r + 1,
                    col: c + 1,
                },
            ));
            picked += 1;
        }
    }
    debug_assert_eq!(picked, want as u64);
    pairs
}

/// Number of overlap pairs for a grid side (without materializing them).
pub fn overlap_count(side: u32) -> u32 {
    2 * side * (side - 1) + calib::diagonal_count(side).min((side - 1) * (side - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_enumeration() {
        for side in 2..30 {
            assert_eq!(
                overlap_pairs(side).len() as u32,
                overlap_count(side),
                "side {side}"
            );
        }
    }

    #[test]
    fn canonical_pair_counts() {
        assert_eq!(overlap_count(7), 99);
        assert_eq!(overlap_count(13), 387);
        assert_eq!(overlap_count(26), 1669);
    }

    #[test]
    fn pairs_are_valid_neighbors() {
        for (a, b) in overlap_pairs(9) {
            let dr = b.row as i64 - a.row as i64;
            let dc = b.col as i64 - a.col as i64;
            assert!(
                (dr, dc) == (0, 1) || (dr, dc) == (1, 0) || (dr, dc) == (1, 1),
                "({},{}) -> ({},{}) is not a neighbor pair",
                a.row,
                a.col,
                b.row,
                b.col
            );
            assert!(a.row < 9 && a.col < 9 && b.row < 9 && b.col < 9);
        }
    }

    #[test]
    fn pairs_are_unique() {
        let pairs = overlap_pairs(13);
        let mut seen = std::collections::HashSet::new();
        for (a, b) in &pairs {
            assert!(seen.insert((a.index(13), b.index(13))), "duplicate pair");
        }
    }

    #[test]
    fn every_plate_appears_in_some_pair() {
        for side in [2u32, 7, 13] {
            let pairs = overlap_pairs(side);
            let mut seen = vec![false; (side * side) as usize];
            for (a, b) in pairs {
                seen[a.index(side) as usize] = true;
                seen[b.index(side) as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "side {side}: isolated plate");
        }
    }

    #[test]
    fn plate_index_is_row_major() {
        assert_eq!(Plate { row: 2, col: 3 }.index(7), 17);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_grid() {
        overlap_pairs(1);
    }
}
