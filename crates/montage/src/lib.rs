//! # mcloud-montage
//!
//! Synthetic generator for the Montage mosaic workflows the SC'08 paper
//! simulates (1°/2°/4° square mosaics of M17 with 203/731/3,027 tasks).
//!
//! The paper drove its simulator with real mDAG-produced workflow
//! descriptions plus task runtimes and file sizes measured on real runs.
//! Those traces are not publicly archived, so this crate substitutes a
//! parametric generator that reproduces:
//!
//! * the exact DAG shape (the nine-stage Montage pipeline, fan-out over
//!   input plates and overlap pairs),
//! * the exact canonical task counts (203 / 731 / 3,027),
//! * the paper's mosaic sizes (173.46 MB / 557.9 MB / 2.229 GB),
//! * calibrated totals: CPU-time sums, serial makespans, and CCR in the
//!   paper's reported band (see [`calib`] for the fit table).
//!
//! ```
//! use mcloud_montage::{montage_1_degree, MosaicConfig, generate};
//!
//! let wf = montage_1_degree();
//! assert_eq!(wf.num_tasks(), 203);
//!
//! // Arbitrary request sizes work too:
//! let wf3 = generate(&MosaicConfig::new(3.0).region("Orion"));
//! assert!(wf3.num_tasks() > 1000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calib;
mod generator;
mod grid;
mod trace;

pub use generator::{
    generate, montage_16_degree, montage_1_degree, montage_2_degree, montage_4_degree,
    montage_8_degree, paper_figure3, pipeline_stage, Band, MosaicConfig, MONTAGE_PIPELINE,
};
pub use grid::{overlap_count, overlap_pairs, Plate};
pub use trace::{apply_runtime_overrides, apply_size_overrides};
