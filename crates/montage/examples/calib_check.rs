//! Prints the calibration summary for the three canonical workloads next
//! to the paper's anchor numbers — the quickest way to eyeball the
//! synthetic-trace substitution (see DESIGN.md §5).
//!
//! ```text
//! cargo run -p mcloud-montage --example calib_check --release
//! ```

fn main() {
    println!("workload calibration vs paper anchors (CPU at $0.10/CPU-hour, CCR at 10 Mbps):\n");
    for (wf, label, cpu_paper, ccr_paper) in [
        (mcloud_montage::montage_1_degree(), "1deg", 0.56, 0.053),
        (mcloud_montage::montage_2_degree(), "2deg", 2.03, 0.053),
        (mcloud_montage::montage_4_degree(), "4deg", 8.40, 0.045),
    ] {
        let cpu = wf.total_runtime_s() / 3600.0 * 0.10;
        let ccr = wf.ccr_at_link(10e6);
        println!(
            "{label}: tasks={} files={} runtime={:.1}h cpu=${:.3} (paper {cpu_paper}) \
             ccr={:.4} (paper {ccr_paper})",
            wf.num_tasks(),
            wf.num_files(),
            wf.total_runtime_s() / 3600.0,
            cpu,
            ccr,
        );
        println!(
            "      cp={:.0}s maxpar={} bytes={:.2}GB in={:.0}MB out={:.0}MB",
            wf.critical_path_s(),
            wf.max_parallelism(),
            wf.total_bytes() as f64 / 1e9,
            wf.external_input_bytes() as f64 / 1e6,
            wf.staged_out_bytes() as f64 / 1e6,
        );
    }
}
