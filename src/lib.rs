//! # montage-cloud
//!
//! A Rust reproduction of *"The Cost of Doing Science on the Cloud: The
//! Montage Example"* (Deelman, Singh, Livny, Berriman, Good — SC 2008).
//!
//! The paper asks: given pay-per-use cloud resources (Amazon EC2/S3, 2008
//! rates), how should a data-intensive science application like the
//! Montage mosaic service plan its execution — how many processors to
//! provision, which data-management mode to run, and when hosting data in
//! the cloud pays for itself. This workspace rebuilds the whole study:
//!
//! * [`simkit`] — deterministic discrete-event kernel (the GridSim
//!   substitute),
//! * [`dag`] — workflow graphs, analyses (levels, CCR, critical path), and
//!   DAX-subset XML,
//! * [`montage`] — calibrated synthetic Montage workloads
//!   (203 / 731 / 3,027 tasks),
//! * [`cost`] — the Amazon 2008 rate card, billing granularity, archival
//!   economics,
//! * [`core`] — the execution-plan simulator (3 data modes x 2
//!   provisioning plans),
//! * [`sweep`] — parallel parameter sweeps, Pareto analysis, tables.
//!
//! ## Quickstart
//!
//! ```
//! use montage_cloud::prelude::*;
//!
//! // Build the paper's 1-degree M17 mosaic workflow (203 tasks)...
//! let wf = montage_1_degree();
//! // ...and price it on 16 provisioned processors at Amazon 2008 rates.
//! let report = simulate(&wf, &ExecConfig::fixed(16));
//! println!(
//!     "16 procs: {} for {:.2} h",
//!     report.total_cost(),
//!     report.makespan_hours()
//! );
//! assert!(report.total_cost().dollars() < 1.5);
//! ```

pub use mcloud_cache as cache;
pub use mcloud_core as core;
pub use mcloud_cost as cost;
pub use mcloud_dag as dag;
pub use mcloud_montage as montage;
pub use mcloud_service as service;
pub use mcloud_simkit as simkit;
pub use mcloud_sweep as sweep;

/// The names most programs need, in one import.
pub mod prelude {
    pub use mcloud_core::{
        attribute_profile_costs, profile_json, profile_svg, profile_text, profile_trace, simulate,
        simulate_traced, simulate_with_sink, trace_from_jsonl, trace_to_chrome, trace_to_jsonl,
        ClassProfile, CostAttribution, DataMode, ExecConfig, Provisioning, Report, WorkflowProfile,
    };
    pub use mcloud_cost::{
        attribute_costs, attributed_total, residual_row, ArchiveOrRecompute, AttributedCost,
        Campaign, ChargeGranularity, CostBreakdown, DatasetHosting, Money, Pricing, ResourceUsage,
    };
    pub use mcloud_dag::{DagError, FileId, TaskId, Workflow, WorkflowBuilder};
    pub use mcloud_montage::{
        generate, montage_1_degree, montage_2_degree, montage_4_degree, paper_figure3,
        pipeline_stage, Band, MosaicConfig, MONTAGE_PIPELINE,
    };
    pub use mcloud_service::{
        bursty, bursty_stream, class_stream, mixed, mixed_stream, periodic, plan_capacity,
        plan_json, plan_text, poisson, service_trace_jsonl, simulate_autoscale,
        simulate_autoscale_each, simulate_autoscale_stream, simulate_service,
        simulate_service_each, simulate_service_stream, simulate_service_with_sink,
        AdmissionPolicy, Arrival, ArrivalStream, AutoScaleConfig, AutoScaleReport, CapacityPlan,
        FlashCrowd, MergedStream, PlanCandidate, PlanSpec, RateProfile, RequestClass,
        RequestOutcome, ServiceConfig, ServiceReport, Venue,
    };
    pub use mcloud_simkit::{
        Channel, EventSink, Histogram, MetricClass, NullSink, RecordingSink, Registry, TimedEvent,
        TraceCounters, TraceEvent, WorkerPool,
    };
    pub use mcloud_sweep::{
        ccr_sweep, cheapest_within_deadline, geometric_processors, mode_matrix, pareto_frontier,
        processor_sweep, processor_sweep_progress, scale_to_ccr, CostTimePoint, Table,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_a_working_pipeline() {
        let wf = paper_figure3();
        let report = simulate(&wf, &ExecConfig::paper_default());
        assert!(report.total_cost() > Money::ZERO);
    }
}
