//! Cross-crate pipeline tests: generator -> DAX -> parser -> simulator ->
//! sweeps, plus mode-semantics orderings on all three canonical workloads.

use montage_cloud::dag::{from_dax, to_dax, to_dot, DotStyle};
use montage_cloud::prelude::*;

#[test]
fn dax_roundtripped_workflow_simulates_equivalently() {
    // Parsing re-numbers files (inputs-first per job), which permutes the
    // FCFS stage-in order, so the timeline may shift by a hair — but every
    // order-invariant quantity must match exactly, and the time-dependent
    // ones within a fraction of a percent.
    let wf = montage_1_degree();
    let back = from_dax(&to_dax(&wf)).expect("generated DAX parses");
    for mode in DataMode::ALL {
        let cfg = ExecConfig::on_demand(mode);
        let a = simulate(&wf, &cfg);
        let b = simulate(&back, &cfg);
        assert_eq!(a.bytes_in, b.bytes_in, "{}", mode.label());
        assert_eq!(a.bytes_out, b.bytes_out);
        assert_eq!(a.transfers_in, b.transfers_in);
        assert!(a.costs.cpu.approx_eq(b.costs.cpu, 1e-12));
        let (ma, mb) = (a.makespan.as_secs_f64(), b.makespan.as_secs_f64());
        assert!((ma - mb).abs() / ma < 0.01, "makespan {ma} vs {mb}");
        let (sa, sb) = (a.storage_byte_seconds, b.storage_byte_seconds);
        assert!((sa - sb).abs() / sa < 0.02, "storage {sa} vs {sb}");
        assert!(a.total_cost().approx_eq(b.total_cost(), 0.01));
    }
}

#[test]
fn mode_orderings_hold_for_all_canonical_sizes() {
    // Figures 7-9: "The cost distributions are similar for all the
    // workflows and differ only in magnitude."
    for wf in [montage_1_degree(), montage_2_degree(), montage_4_degree()] {
        let points = mode_matrix(&wf, &ExecConfig::paper_default());
        let by = |m: DataMode| points.iter().find(|p| p.mode == m).unwrap();
        let (rio, reg, clean) = (
            &by(DataMode::RemoteIo).report,
            &by(DataMode::Regular).report,
            &by(DataMode::DynamicCleanup).report,
        );
        // Storage space-time: remote < cleanup < regular.
        assert!(
            rio.storage_byte_seconds < clean.storage_byte_seconds,
            "{}",
            wf.name()
        );
        assert!(
            clean.storage_byte_seconds < reg.storage_byte_seconds,
            "{}",
            wf.name()
        );
        // Transfers: remote moves the most both ways; regular == cleanup.
        assert!(rio.bytes_in > reg.bytes_in);
        assert!(rio.bytes_out > reg.bytes_out);
        assert_eq!(reg.bytes_in, clean.bytes_in);
        assert_eq!(reg.bytes_out, clean.bytes_out);
        // Total cost: remote I/O highest, cleanup lowest.
        assert!(rio.total_cost() > reg.total_cost());
        assert!(clean.total_cost() <= reg.total_cost());
        // CPU identical everywhere.
        assert!(rio.costs.cpu.approx_eq(reg.costs.cpu, 1e-12));
        assert!(reg.costs.cpu.approx_eq(clean.costs.cpu, 1e-12));
    }
}

#[test]
fn rate_sensitivity_flips_the_mode_choice() {
    // "If the storage charges were higher and transfer costs were lower,
    // it is possible that the Remote I/O mode would have resulted in the
    // least total cost of the three." Verify that sensitivity: crank
    // storage way up, make transfers free.
    let wf = montage_1_degree();
    let mut cfg = ExecConfig::paper_default();
    cfg.pricing = Pricing {
        storage_per_gb_month: 50_000.0,
        transfer_in_per_gb: 0.0,
        transfer_out_per_gb: 0.0,
        cpu_per_hour: 0.10,
    };
    let points = mode_matrix(&wf, &cfg);
    let by = |m: DataMode| points.iter().find(|p| p.mode == m).unwrap();
    let rio = by(DataMode::RemoteIo).report.total_cost();
    let reg = by(DataMode::Regular).report.total_cost();
    let clean = by(DataMode::DynamicCleanup).report.total_cost();
    assert!(rio < reg, "remote I/O must win under storage-heavy pricing");
    assert!(rio < clean);
}

#[test]
fn ccr_scaled_workflows_price_monotonically() {
    let wf = montage_1_degree();
    let points = ccr_sweep(&wf, &ExecConfig::fixed(8), &[0.05, 0.2, 0.8]);
    for w in points.windows(2) {
        assert!(w[1].report.total_cost() > w[0].report.total_cost());
        assert!(w[1].report.makespan >= w[0].report.makespan);
    }
}

#[test]
fn generated_workflows_export_dot() {
    let wf = generate(&MosaicConfig::new(0.5));
    let dot = to_dot(&wf, DotStyle::Tasks);
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("->"));
    let dot2 = to_dot(&wf, DotStyle::Bipartite);
    assert!(dot2.contains("shape=ellipse"));
}

#[test]
fn arbitrary_degree_requests_work_end_to_end() {
    for degrees in [0.5, 1.5, 3.0] {
        let wf = generate(&MosaicConfig::new(degrees).region("NGC7000").band(Band::H));
        let r = simulate(&wf, &ExecConfig::paper_default());
        assert!(r.total_cost() > Money::ZERO, "{degrees} deg");
        assert!(r.makespan_hours() > 0.0);
        // Bigger requests cost more.
        if degrees > 1.0 {
            let small = simulate(&montage_1_degree(), &ExecConfig::paper_default());
            assert!(r.total_cost() > small.total_cost());
        }
    }
}

#[test]
fn provisioning_advice_is_consistent_with_sweep() {
    let wf = montage_2_degree();
    let points = processor_sweep(
        &wf,
        &ExecConfig::paper_default(),
        &geometric_processors(128),
    );
    let ct: Vec<CostTimePoint> = points
        .iter()
        .map(|p| CostTimePoint {
            cost: p.report.total_cost().dollars(),
            time: p.report.makespan.as_secs_f64(),
        })
        .collect();
    // A generous deadline picks the cheapest plan; a tight one picks more
    // processors and costs more.
    let lax = cheapest_within_deadline(&ct, 100.0 * 3600.0).unwrap();
    let tight = cheapest_within_deadline(&ct, 1.0 * 3600.0).unwrap();
    assert_eq!(points[lax].processors, 1);
    assert!(points[tight].processors > points[lax].processors);
    assert!(ct[tight].cost > ct[lax].cost);
    // Every frontier point is feasible for its own makespan (sanity).
    for i in pareto_frontier(&ct) {
        assert_eq!(cheapest_within_deadline(&ct, ct[i].time), Some(i));
    }
}

#[test]
fn trace_reconstructs_utilization() {
    // The Gantt trace must account exactly for the busy time that the
    // utilization figure reports.
    let wf = montage_1_degree();
    let r = simulate(&wf, &ExecConfig::fixed(4).with_trace());
    let trace = r.trace.as_ref().unwrap();
    let busy: f64 = trace
        .iter()
        .map(|s| s.finish.as_secs_f64() - s.start.as_secs_f64())
        .sum();
    let expect = r.cpu_utilization * 4.0 * r.makespan.as_secs_f64();
    assert!(
        (busy - expect).abs() / expect < 1e-6,
        "busy {busy} vs utilization-implied {expect}"
    );
    // The trace runtimes are exactly the task runtimes.
    assert!((busy - wf.total_runtime_s()).abs() < 1e-3);
}
