//! The parallel harness must be invisible: sweeps run under rayon yield
//! byte-identical results regardless of thread count, and repeated runs
//! of any experiment agree exactly.

use montage_cloud::prelude::*;

#[test]
fn sweeps_are_thread_count_invariant() {
    let wf = montage_1_degree();
    let base = ExecConfig::paper_default();
    let procs = geometric_processors(32);

    let serial_pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let wide_pool = rayon::ThreadPoolBuilder::new().num_threads(8).build().unwrap();
    let serial = serial_pool.install(|| processor_sweep(&wf, &base, &procs));
    let wide = wide_pool.install(|| processor_sweep(&wf, &base, &procs));
    assert_eq!(serial, wide);

    let serial = serial_pool.install(|| mode_matrix(&wf, &base));
    let wide = wide_pool.install(|| mode_matrix(&wf, &base));
    assert_eq!(serial, wide);

    let targets = [0.05, 0.2, 0.8];
    let serial = serial_pool.install(|| ccr_sweep(&wf, &ExecConfig::fixed(8), &targets));
    let wide = wide_pool.install(|| ccr_sweep(&wf, &ExecConfig::fixed(8), &targets));
    assert_eq!(serial, wide);
}

#[test]
fn trace_overrides_compose_with_the_engine() {
    use montage_cloud::montage::apply_runtime_overrides;
    // Feed "measured" runtimes into the generated DAG, exactly the paper's
    // pipeline, and watch the bill move accordingly.
    let wf = montage_1_degree();
    let base = simulate(&wf, &ExecConfig::paper_default());
    // Halve mAdd: cheaper and (on demand) no slower.
    let csv = "mAdd,90.0\n";
    let traced = apply_runtime_overrides(&wf, csv).unwrap();
    let r = simulate(&traced, &ExecConfig::paper_default());
    assert!(r.costs.cpu < base.costs.cpu);
    assert!(r.makespan <= base.makespan);
}
