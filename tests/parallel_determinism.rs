//! The parallel harness must be invisible: threaded sweeps match a plain
//! sequential simulation of every point, and repeated runs of any
//! experiment agree exactly.

use montage_cloud::prelude::*;

#[test]
fn sweeps_match_sequential_simulation() {
    let wf = montage_1_degree();
    let base = ExecConfig::paper_default();
    let procs = geometric_processors(32);

    let points = processor_sweep(&wf, &base, &procs);
    assert_eq!(points.len(), procs.len());
    for p in &points {
        let direct = simulate(&wf, &ExecConfig::fixed(p.processors));
        assert_eq!(p.report, direct, "P={}", p.processors);
    }

    let modes = mode_matrix(&wf, &base);
    for m in &modes {
        let direct = simulate(
            &wf,
            &ExecConfig {
                mode: m.mode,
                ..base.clone()
            },
        );
        assert_eq!(m.report, direct, "mode {:?}", m.mode);
    }
}

#[test]
fn sweeps_are_repeatable() {
    let wf = montage_1_degree();
    let base = ExecConfig::paper_default();
    let procs = geometric_processors(32);
    assert_eq!(
        processor_sweep(&wf, &base, &procs),
        processor_sweep(&wf, &base, &procs)
    );

    let targets = [0.05, 0.2, 0.8];
    assert_eq!(
        ccr_sweep(&wf, &ExecConfig::fixed(8), &targets),
        ccr_sweep(&wf, &ExecConfig::fixed(8), &targets)
    );
}

#[test]
fn trace_overrides_compose_with_the_engine() {
    use montage_cloud::montage::apply_runtime_overrides;
    // Feed "measured" runtimes into the generated DAG, exactly the paper's
    // pipeline, and watch the bill move accordingly.
    let wf = montage_1_degree();
    let base = simulate(&wf, &ExecConfig::paper_default());
    // Halve mAdd: cheaper and (on demand) no slower.
    let csv = "mAdd,90.0\n";
    let traced = apply_runtime_overrides(&wf, csv).unwrap();
    let r = simulate(&traced, &ExecConfig::paper_default());
    assert!(r.costs.cpu < base.costs.cpu);
    assert!(r.makespan <= base.makespan);
}
