//! The paper's headline numbers, reproduced end-to-end with tolerance
//! bands. Each assertion cites the sentence in the paper it checks.
//!
//! Absolute dollars are expected to track within ~15% (the workload is a
//! calibrated synthetic substitute for the authors' measured traces); the
//! *orderings* are expected to hold exactly.

use montage_cloud::prelude::*;

fn close(got: f64, want: f64, rel: f64, what: &str) {
    assert!(
        (got - want).abs() / want.abs() <= rel,
        "{what}: got {got}, paper {want} (tolerance {rel})"
    );
}

#[test]
fn question1_montage1_extremes() {
    // "60 cents for the 1 processor computation versus almost 4$ with 128
    // processors ... longest execution time of 5.5 hours. The runtime on
    // 128 processors is only 18 minutes."
    let wf = montage_1_degree();
    let one = simulate(&wf, &ExecConfig::fixed(1));
    close(one.total_cost().dollars(), 0.60, 0.10, "1deg 1-proc cost");
    close(one.makespan_hours(), 5.5, 0.10, "1deg 1-proc hours");
    let many = simulate(&wf, &ExecConfig::fixed(128));
    close(many.total_cost().dollars(), 4.0, 0.15, "1deg 128-proc cost");
    close(many.makespan_hours(), 0.3, 0.25, "1deg 128-proc hours");
}

#[test]
fn question1_montage2_extremes() {
    // "the cost of running the workflow on 1 processor is $2.25 with a
    // runtime of 20.5 hours whereas ... 128 processors results in a
    // runtime of less than 40 minutes with a cost of less than $8."
    let wf = montage_2_degree();
    let one = simulate(&wf, &ExecConfig::fixed(1));
    close(one.total_cost().dollars(), 2.25, 0.10, "2deg 1-proc cost");
    close(one.makespan_hours(), 20.5, 0.10, "2deg 1-proc hours");
    let many = simulate(&wf, &ExecConfig::fixed(128));
    assert!(many.total_cost().dollars() < 8.0, "2deg 128-proc under $8");
    assert!(
        many.makespan_hours() < 40.0 / 60.0,
        "2deg 128-proc under 40 min"
    );
}

#[test]
fn question1_montage4_extremes() {
    // "running on 1 processor costs $9 with a runtime of 85 hours".
    let wf = montage_4_degree();
    let one = simulate(&wf, &ExecConfig::fixed(1));
    close(one.total_cost().dollars(), 9.0, 0.10, "4deg 1-proc cost");
    close(one.makespan_hours(), 85.0, 0.10, "4deg 1-proc hours");
    // The 128-processor point: the paper prints $13.92 / ~1 h, but its own
    // 10 Mbps link needs 1.08 h to move the inputs plus 0.50 h for the
    // mosaic, so the floor is ~1.6 h; we assert our cost lands between the
    // paper's figure and 2x it, and the makespan near the wire floor.
    let many = simulate(&wf, &ExecConfig::fixed(128));
    assert!(
        (13.92..=28.0).contains(&many.total_cost().dollars()),
        "4deg 128-proc cost {}",
        many.total_cost()
    );
    close(many.makespan_hours(), 1.6, 0.25, "4deg 128-proc hours");
}

#[test]
fn cost_rises_and_time_falls_with_processors() {
    // The shape of Figures 4-6: "The total cost is an increasing function
    // of the number of the allocated processors while the execution time
    // is a decreasing function".
    for wf in [montage_1_degree(), montage_2_degree()] {
        let points = processor_sweep(
            &wf,
            &ExecConfig::paper_default(),
            &geometric_processors(128),
        );
        for w in points.windows(2) {
            assert!(
                w[1].report.total_cost() >= w[0].report.total_cost(),
                "{}: cost dipped between {} and {} procs",
                wf.name(),
                w[0].processors,
                w[1].processors
            );
            assert!(
                w[1].report.makespan <= w[0].report.makespan,
                "{}: time rose between {} and {} procs",
                wf.name(),
                w[0].processors,
                w[1].processors
            );
        }
        // Storage cost declines as processors increase ("the storage costs
        // decline but the CPU costs increase").
        assert!(
            points.last().unwrap().report.costs.storage
                < points.first().unwrap().report.costs.storage
        );
        // And storage is negligible next to CPU everywhere (log-scale plot).
        for p in &points {
            assert!(p.report.costs.storage.dollars() < 0.05 * p.report.costs.cpu.dollars());
        }
    }
}

#[test]
fn question2a_on_demand_vs_provisioned() {
    // "the cost of running the 4 degree square Montage workflow on 128
    // processors is $13.92 in the provisioned case, whereas the workflow
    // which is charged only for the resources used is only $8.89" — the
    // on-demand cost is far below the 128-proc provisioned cost.
    let wf = montage_4_degree();
    let provisioned = simulate(&wf, &ExecConfig::fixed(128));
    let on_demand = simulate(&wf, &ExecConfig::paper_default());
    close(
        on_demand.total_cost().dollars(),
        8.89,
        0.10,
        "4deg on-demand",
    );
    assert!(provisioned.total_cost().dollars() > 1.4 * on_demand.total_cost().dollars());
    // Utilization is the culprit: "CPU utilization can be low in the
    // provisioned case."
    assert!(provisioned.cpu_utilization < 0.8);
}

#[test]
fn figure10_cpu_costs() {
    // Figure 10 / Question 3: CPU costs of $0.56, $2.03, $8.40 for the
    // 1/2/4-degree workflows under utilization-based billing.
    for (wf, want) in [
        (montage_1_degree(), 0.56),
        (montage_2_degree(), 2.03),
        (montage_4_degree(), 8.40),
    ] {
        let r = simulate(&wf, &ExecConfig::paper_default());
        close(r.costs.cpu.dollars(), want, 0.06, "figure 10 CPU cost");
    }
}

#[test]
fn ccr_table_matches_paper_band() {
    // Section 6 table: CCR = 0.053 / 0.053 / 0.045 at 10 Mbps.
    close(
        montage_1_degree().ccr_at_link(10e6),
        0.053,
        0.05,
        "1deg CCR",
    );
    close(
        montage_2_degree().ccr_at_link(10e6),
        0.053,
        0.12,
        "2deg CCR",
    );
    close(
        montage_4_degree().ccr_at_link(10e6),
        0.045,
        0.05,
        "4deg CCR",
    );
}

#[test]
fn question2b_hosting_economics() {
    // "$1,800 per month ... at least $1,800/($2.22-$2.12) = 18,000 mosaics
    // per month ... an additional $1,200" — rates reproduce exactly; the
    // per-request saving (and hence the break-even volume) depends on the
    // simulated input volume, so only its sign and order are pinned.
    let pricing = Pricing::amazon_2008();
    let twelve_tb = 12_000 * 1_000_000_000u64;
    assert_eq!(pricing.monthly_storage_cost(twelve_tb).dollars(), 1800.0);
    assert_eq!(pricing.transfer_in_cost(twelve_tb).dollars(), 1200.0);

    let wf = montage_2_degree();
    let staged = simulate(&wf, &ExecConfig::paper_default());
    let hosted = simulate(&wf, &ExecConfig::paper_default().prestaged(true));
    close(
        staged.total_cost().dollars(),
        2.22,
        0.06,
        "2deg staged request",
    );
    close(
        hosted.total_cost().dollars(),
        2.12,
        0.06,
        "2deg hosted request",
    );
    let hosting = DatasetHosting {
        dataset_bytes: twelve_tb,
        request_cost_staged: staged.total_cost(),
        request_cost_hosted: hosted.total_cost(),
    };
    let be = hosting.break_even_requests_per_month(&pricing);
    assert!(
        (10_000.0..200_000.0).contains(&be),
        "break-even volume {be}"
    );
}

#[test]
fn question3_whole_sky_and_archival() {
    // "3,900 x $8.88 = $34,632" and break-evens of 21.52 / 24.25 / 25.12
    // months for the 1/2/4-degree mosaics.
    let pricing = Pricing::amazon_2008();
    let wf = montage_4_degree();
    let per_plate = simulate(&wf, &ExecConfig::paper_default()).total_cost();
    let sky = Campaign {
        requests: 3_900,
        cost_per_request: per_plate,
    };
    close(sky.total().dollars(), 34_632.0, 0.10, "whole-sky cost");

    for (wf, want_months) in [
        (montage_1_degree(), 21.52),
        (montage_2_degree(), 24.25),
        (montage_4_degree(), 25.12),
    ] {
        let r = simulate(&wf, &ExecConfig::paper_default());
        let mosaic = wf
            .staged_out_files()
            .iter()
            .map(|&f| wf.file(f).clone())
            .find(|f| f.name.ends_with(".fits"))
            .unwrap();
        let months = ArchiveOrRecompute {
            recompute_cost: r.costs.cpu,
            product_bytes: mosaic.bytes,
        }
        .break_even_months(&pricing);
        close(months, want_months, 0.08, "archival break-even");
    }
}

#[test]
fn storage_costs_are_insignificant_conclusion() {
    // The paper's conclusion: "for a data-intensive application with a
    // small computational granularity, the storage costs were
    // insignificant as compared to the CPU costs."
    for wf in [montage_1_degree(), montage_2_degree(), montage_4_degree()] {
        for mode in DataMode::ALL {
            let r = simulate(&wf, &ExecConfig::on_demand(mode));
            assert!(
                r.costs.storage.dollars() < 0.02 * r.costs.cpu.dollars(),
                "{} {}: storage {} vs cpu {}",
                wf.name(),
                mode.label(),
                r.costs.storage,
                r.costs.cpu
            );
        }
    }
}
