//! What failures and outages do to the paper's cost story.
//!
//! The paper's conclusions flag reliability as an open question: S3
//! "went down twice in the first 7 months of 2008" and "the possible
//! impact on the applications can be significant". This example quantifies
//! that impact on the 1-degree mosaic: task-failure rates inflate the
//! on-demand bill, and a storage outage during the run strands provisioned
//! (and billed) processors.
//!
//! ```text
//! cargo run --release --example resilience
//! ```

use montage_cloud::prelude::*;

fn main() {
    let wf = montage_1_degree();

    println!("task failures (on-demand billing; every attempt is paid):");
    println!(
        "{:>8} | {:>9} | {:>8} | {:>10} | {:>9}",
        "p(fail)", "attempts", "retries", "total cost", "makespan"
    );
    let baseline = simulate(&wf, &ExecConfig::paper_default());
    for prob in [0.0, 0.05, 0.1, 0.2, 0.3] {
        let cfg = if prob > 0.0 {
            ExecConfig::paper_default().with_faults(prob, 7)
        } else {
            ExecConfig::paper_default()
        };
        let r = simulate(&wf, &cfg);
        println!(
            "{:>8.2} | {:>9} | {:>8} | {:>10} | {:>8.2}h",
            prob,
            r.task_executions,
            r.failed_attempts,
            r.total_cost().to_string(),
            r.makespan_hours(),
        );
    }
    println!(
        "  -> a 30% failure rate costs ~{:.0}% extra\n",
        (simulate(&wf, &ExecConfig::paper_default().with_faults(0.3, 7))
            .total_cost()
            .dollars()
            / baseline.total_cost().dollars()
            - 1.0)
            * 100.0
    );

    println!("a 1-hour storage outage at t=10 min, 8 provisioned processors:");
    let plain = simulate(&wf, &ExecConfig::fixed(8));
    let outage = simulate(&wf, &ExecConfig::fixed(8).with_outage(600.0, 3600.0));
    for (label, r) in [("no outage", &plain), ("with outage", &outage)] {
        println!(
            "  {label:>12}: {} at {:.2} h (utilization {:.0}%)",
            r.total_cost(),
            r.makespan_hours(),
            r.cpu_utilization * 100.0
        );
    }
    println!(
        "  -> the outage adds {} of idle-but-billed compute\n",
        outage.costs.cpu - plain.costs.cpu
    );

    println!("VM boot overhead (the paper's flagged-but-unmodeled startup cost):");
    for startup in [0.0, 300.0, 900.0] {
        let cfg = ExecConfig::fixed(32).with_vm_overhead(montage_cloud::core::VmOverhead {
            startup_s: startup,
            teardown_s: 60.0,
        });
        let r = simulate(&wf, &cfg);
        println!(
            "  boot {:>4.0} s on 32 procs: {} at {:.2} h",
            startup,
            r.total_cost(),
            r.makespan_hours()
        );
    }
}
