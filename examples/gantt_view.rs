//! Visualize a schedule: text Gantt charts of the 1-degree mosaic on
//! different provisioning levels, showing where the money goes idle.
//!
//! ```text
//! cargo run --release --example gantt_view
//! ```

use montage_cloud::core::gantt_text;
use montage_cloud::prelude::*;

fn main() {
    let wf = montage_1_degree();
    for procs in [4u32, 16] {
        let r = simulate(&wf, &ExecConfig::fixed(procs).with_trace());
        println!(
            "--- {procs} processors: {} at {:.2} h, utilization {:.0}% ---",
            r.total_cost(),
            r.makespan_hours(),
            r.cpu_utilization * 100.0
        );
        print!("{}", gantt_text(&wf, &r, 100));
        println!();
    }
    println!(
        "legend: each row is a processor; 'm' cells are running Montage tasks,\n\
         '.' cells are idle-but-billed time. More processors = more white space\n\
         = the utilization loss behind the paper's provisioned-vs-on-demand gap."
    );
}
