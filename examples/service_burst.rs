//! The paper's motivating scenario, end to end: a mosaic service with a
//! small owned cluster faces a sporadic overload and decides whether (and
//! how aggressively) to burst to the cloud.
//!
//! "Assume that an application has a set of resources available to them
//! but sometimes it needs more resources than it has, so it reaches out
//! to the cloud from time to time to meet the additional demands."
//!
//! ```text
//! cargo run --release --example service_burst
//! ```

use montage_cloud::prelude::*;

fn main() {
    // A month of 1-degree requests: ~1 every 2 hours, plus two observing-
    // season overload days at 12x the base rate.
    let horizon_hours = 30.0 * 24.0;
    let arrivals = bursty(
        0.5,
        horizon_hours,
        1.0,
        &[(120.0, 24.0, 12.0), (480.0, 24.0, 12.0)],
        2008,
    );
    println!(
        "month of traffic: {} requests ({} in overload windows)\n",
        arrivals.len(),
        arrivals
            .iter()
            .filter(|a| (120.0..144.0).contains(&a.at_hours)
                || (480.0..504.0).contains(&a.at_hours))
            .count()
    );

    let mut table = Table::new(vec![
        "policy",
        "local",
        "cloud",
        "cloud spend",
        "mean wait (h)",
        "p95 turnaround (h)",
        "max wait (h)",
    ]);
    let policies: Vec<(String, Option<usize>)> = vec![
        ("never burst".to_string(), None),
        ("burst at 8 waiting".to_string(), Some(8)),
        ("burst at 2 waiting".to_string(), Some(2)),
        ("burst immediately".to_string(), Some(0)),
    ];
    for (label, threshold) in policies {
        let cfg = ServiceConfig {
            local_slots: 2,
            burst_threshold: threshold,
            ..ServiceConfig::default_burst()
        };
        let report = simulate_service(&arrivals, &cfg);
        table.push_row(vec![
            label,
            report.local_requests().to_string(),
            report.cloud_requests().to_string(),
            report.cloud_cost.to_string(),
            format!("{:.2}", report.mean_wait_hours()),
            format!("{:.2}", report.turnaround_quantile(0.95)),
            format!("{:.2}", report.max_wait_hours()),
        ]);
    }
    print!("{}", table.to_ascii());
    println!(
        "\nreading the table: a few dollars of cloud bursting collapses the \
         overload-day queue — the cloud as overflow capacity, exactly the \
         paper's pitch."
    );
}
