//! How data-intensity changes the bill: the paper's CCR experiment
//! (Figure 11) as an interactive-style exploration.
//!
//! "Montage is only one of a number of scientific applications that can
//! potentially benefit from cloud services" — so the paper rescales the
//! 1-degree workflow's file sizes to emulate applications with different
//! communication-to-computation ratios and re-prices them on 8 provisioned
//! processors. This example reproduces that sweep and adds the
//! decision the paper draws from it: the more data-intensive the
//! application, the stronger the case for pre-storing inputs in the cloud.
//!
//! ```text
//! cargo run --release --example ccr_explorer
//! ```

use montage_cloud::prelude::*;

fn main() {
    let wf = montage_1_degree();
    let base = ExecConfig::fixed(8);
    println!(
        "base workflow {} has CCR {:.3} at 10 Mbps\n",
        wf.name(),
        wf.ccr_at_link(10e6)
    );

    let targets = [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2];
    let mut table = Table::new(vec![
        "ccr",
        "cpu",
        "storage",
        "transfer",
        "total",
        "runtime_h",
        "prestage_saves",
    ]);
    for point in ccr_sweep(&wf, &base, &targets) {
        // What would hosting the inputs in the cloud save at this CCR?
        let scaled = scale_to_ccr(&wf, point.target_ccr, base.bandwidth_bps);
        let hosted = simulate(&scaled, &base.clone().prestaged(true));
        let saving = point.report.total_cost() - hosted.total_cost();
        table.push_row(vec![
            format!("{:.2}", point.actual_ccr),
            point.report.costs.cpu.to_string(),
            format!("{:.4}", point.report.costs.storage.dollars()),
            point.report.costs.transfer().to_string(),
            point.report.total_cost().to_string(),
            format!("{:.2}", point.report.makespan_hours()),
            saving.to_string(),
        ]);
    }
    print!("{}", table.to_ascii());

    println!(
        "\nreading the table: every cost column grows with CCR (the paper's \
         Figure 11), and the per-request saving from pre-storing inputs grows \
         with it — \"it may be beneficial to pre-store all the input data in \
         the cloud ... as the applications become more data-intensive.\""
    );
}
