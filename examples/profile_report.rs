//! Trace-driven profiling: where did the time — and the dollars — go?
//!
//! Simulates the paper's 1-degree mosaic under all three data-management
//! modes, reconstructs per-task spans from each run's event trace, and
//! prints the phase breakdown (queue-wait / execution / transfer-in /
//! transfer-out / storage-wait) and the cost attribution side by side.
//! Every total reconciles with the engine's own `Report`, which the
//! example asserts as it goes.
//!
//! ```text
//! cargo run --release --example profile_report
//! ```

use montage_cloud::prelude::*;

fn main() {
    let wf = montage_1_degree();
    let mut profiles = Vec::new();
    for mode in DataMode::ALL {
        let cfg = ExecConfig::on_demand(mode);
        let (report, sink) = simulate_traced(&wf, &cfg);
        let p = profile_trace(&wf, sink.events());
        let attr = attribute_profile_costs(&p, &report, &cfg.pricing);

        // The profiler is accounting, not estimation: its sums match the
        // engine's billing to rounding.
        let exec: f64 = p.classes.iter().map(|c| c.exec_s).sum();
        assert!((exec - report.task_runtime_seconds).abs() < 1e-3);
        assert!(attr.attributed().approx_eq(&report.costs, 1e-6));

        profiles.push((mode, p, attr));
    }

    // Phase breakdown per class, modes side by side.
    println!("phase totals per class, seconds (1-degree mosaic, on-demand)\n");
    println!(
        "{:<14}{:>24}{:>24}{:>24}",
        "",
        DataMode::ALL[0].label(),
        DataMode::ALL[1].label(),
        DataMode::ALL[2].label()
    );
    println!(
        "{:<14}{}",
        "class",
        format!("{:>12}{:>12}", "exec", "wait").repeat(3)
    );
    let classes = profiles[0].1.classes.len();
    for i in 0..classes {
        let mut row = format!("{:<14}", profiles[0].1.classes[i].class);
        for (_, p, _) in &profiles {
            let c = &p.classes[i];
            let wait = c.queue_wait_s + c.transfer_in_s + c.transfer_out_s + c.storage_wait_s;
            row.push_str(&format!("{:>12.1}{:>12.1}", c.exec_s, wait));
        }
        println!("{row}");
    }

    // Where each mode's money went, by attribution row.
    println!("\ncost attribution, dollars\n");
    for (mode, _, attr) in &profiles {
        println!("{}:", mode.label());
        for r in &attr.rows {
            let d = r.cost.total().dollars();
            if d > 5e-7 {
                println!("  {:<20}{d:>10.6}", r.label);
            }
        }
        println!("  {:<20}{:>10.6}", "billed", attr.billed.total().dollars());
    }

    // The observed critical path: what actually gated the makespan.
    let (_, p, _) = &profiles[0];
    println!(
        "\nobserved critical path ({} tasks, {:.1} s of execution; graph bound {:.1} s):",
        p.observed_critical_path.len(),
        p.observed_critical_exec_s,
        p.graph_critical_path_s
    );
    let names: Vec<&str> = p
        .observed_critical_path
        .iter()
        .map(|&t| wf.task(t).name.as_str())
        .collect();
    println!("  {}", names.join(" -> "));

    println!(
        "\nqueue wait p50/p95/max: {:.1} / {:.1} / {:.1} s over {} dispatches",
        p.queue_wait_hist.quantile(0.5),
        p.queue_wait_hist.quantile(0.95),
        p.queue_wait_hist.max(),
        p.queue_wait_hist.count()
    );
}
