//! The paper's community-service scenario: an application serving many
//! mosaic requests must pick a provisioning level per request.
//!
//! Section 6, Question 1 (4-degree discussion): "providing 500 4-degree
//! square mosaics to astronomers would cost $4,500 using 1 processor
//! versus $7,000 using 128 processors ... If the application provisions 16
//! processors ... a total cost of 500 mosaics would be $4,625 ... while
//! giving a relatively reasonable turnaround time." This example re-runs
//! that planning exercise on the simulator, then uses the Pareto frontier
//! and a turnaround deadline to make the choice mechanical.
//!
//! ```text
//! cargo run --release --example mosaic_service
//! ```

use montage_cloud::prelude::*;

const REQUESTS: u64 = 500;
const DEADLINE_HOURS: f64 = 6.0;

fn main() {
    let wf = montage_4_degree();
    println!(
        "service workload: {REQUESTS} requests for {} ({} tasks each)\n",
        wf.name(),
        wf.num_tasks()
    );

    let points = processor_sweep(
        &wf,
        &ExecConfig::paper_default(),
        &geometric_processors(128),
    );
    let frontier_input: Vec<CostTimePoint> = points
        .iter()
        .map(|p| CostTimePoint {
            cost: p.report.total_cost().dollars(),
            time: p.report.makespan.as_secs_f64(),
        })
        .collect();
    let frontier = pareto_frontier(&frontier_input);

    let mut table = Table::new(vec![
        "procs",
        "per-request",
        "turnaround (h)",
        "500 requests",
        "pareto",
    ]);
    for (i, p) in points.iter().enumerate() {
        let campaign = Campaign {
            requests: REQUESTS,
            cost_per_request: p.report.total_cost(),
        };
        table.push_row(vec![
            p.processors.to_string(),
            p.report.total_cost().to_string(),
            format!("{:.2}", p.report.makespan_hours()),
            campaign.total().to_string(),
            if frontier.contains(&i) {
                "*".to_string()
            } else {
                String::new()
            },
        ]);
    }
    print!("{}", table.to_ascii());

    // Pick the cheapest plan that honors the service's turnaround promise.
    let chosen = cheapest_within_deadline(&frontier_input, DEADLINE_HOURS * 3600.0)
        .expect("some plan meets the deadline");
    let p = &points[chosen];
    let campaign = Campaign {
        requests: REQUESTS,
        cost_per_request: p.report.total_cost(),
    };
    println!(
        "\nwith a {DEADLINE_HOURS:.0}-hour turnaround promise: provision {} processors",
        p.processors
    );
    println!(
        "  per request: {} at {:.2} h;   {REQUESTS} requests: {}",
        p.report.total_cost(),
        p.report.makespan_hours(),
        campaign.total()
    );
    println!(
        "  (the paper reached the same conclusion by hand: 16 processors, \
         ~5.5 h, ~$4,625 for 500 mosaics)"
    );
}
