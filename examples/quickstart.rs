//! Quickstart: price one Montage mosaic request on the cloud.
//!
//! Builds the paper's 1-degree M17 workflow (203 tasks), runs it through
//! the simulator under a few execution plans, and prints the cost /
//! performance picture the paper's Figure 4 summarizes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use montage_cloud::prelude::*;

fn main() {
    let wf = montage_1_degree();
    println!(
        "workflow: {} ({} tasks, {} files, {:.2} GB total data, CCR {:.3})\n",
        wf.name(),
        wf.num_tasks(),
        wf.num_files(),
        wf.total_bytes() as f64 / 1e9,
        wf.ccr_at_link(10e6),
    );

    // Question 1: fixed provisioning. How many processors should the
    // application request for this mosaic?
    println!("fixed provisioning (Amazon 2008 rates, 10 Mbps link):");
    println!(
        "{:>6} | {:>10} | {:>9} | {:>11}",
        "procs", "total cost", "runtime", "utilization"
    );
    for p in geometric_processors(128) {
        let r = simulate(&wf, &ExecConfig::fixed(p));
        println!(
            "{:>6} | {:>10} | {:>8.2}h | {:>10.0}%",
            p,
            r.total_cost().to_string(),
            r.makespan_hours(),
            r.cpu_utilization * 100.0,
        );
    }

    // Question 2: on-demand billing with the three data-management modes.
    println!("\non-demand billing, by data-management mode:");
    for point in mode_matrix(&wf, &ExecConfig::paper_default()) {
        let r = &point.report;
        println!(
            "{:>10}: total {} (cpu {}, data management {}), staged in {:.2} GB / out {:.2} GB",
            point.mode.label(),
            r.total_cost(),
            r.costs.cpu,
            r.costs.data_management(),
            r.gb_in(),
            r.gb_out(),
        );
    }

    // The paper's bottom line for this workflow.
    let serial = simulate(&wf, &ExecConfig::fixed(1));
    println!(
        "\npaper's headline, reproduced: ~{} on one processor at {:.1} h runtime",
        serial.total_cost(),
        serial.makespan_hours()
    );
}
