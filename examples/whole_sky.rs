//! Question 3: what does the mosaic of the entire sky cost, and when is it
//! cheaper to archive a mosaic than to recompute it?
//!
//! The paper: the 2MASS sky needs ~3,900 4-degree plates (per three-band
//! set); at $8.88 per plate that's $34,632 — or $34,125 if the input data
//! is already archived in the cloud. And a computed mosaic is worth
//! storing if a repeat request arrives within ~2 years (21.5 / 24.3 / 25.1
//! months for the 1/2/4-degree products).
//!
//! ```text
//! cargo run --release --example whole_sky
//! ```

use montage_cloud::prelude::*;

fn main() {
    let pricing = Pricing::amazon_2008();

    // --- the whole-sky campaign -----------------------------------------
    let wf = montage_4_degree();
    let staged = simulate(&wf, &ExecConfig::paper_default());
    let hosted = simulate(&wf, &ExecConfig::paper_default().prestaged(true));
    println!(
        "one 4-degree plate: {} staged, {} with in-cloud archive",
        staged.total_cost(),
        hosted.total_cost()
    );

    for (label, per_plate) in [
        ("staged", staged.total_cost()),
        ("hosted", hosted.total_cost()),
    ] {
        let sky = Campaign {
            requests: 3_900,
            cost_per_request: per_plate,
        };
        println!(
            "whole sky, 3,900 4-degree plates ({label}): {}",
            sky.total()
        );
    }
    let six_deg = Campaign {
        requests: 1_734,
        cost_per_request: simulate(
            &generate(&MosaicConfig::new(6.0)),
            &ExecConfig::paper_default(),
        )
        .total_cost(),
    };
    println!(
        "alternative tiling, 1,734 6-degree plates: {}\n",
        six_deg.total()
    );

    // --- archive or recompute? --------------------------------------------
    println!("archive-vs-recompute break-even per mosaic size:");
    for degrees in [1.0, 2.0, 4.0] {
        let wf = generate(&MosaicConfig::new(degrees));
        let report = simulate(&wf, &ExecConfig::paper_default());
        let mosaic = wf
            .staged_out_files()
            .iter()
            .map(|&f| wf.file(f).clone())
            .find(|f| f.name.ends_with(".fits"))
            .expect("mosaic is always delivered");
        let choice = ArchiveOrRecompute {
            recompute_cost: report.costs.cpu,
            product_bytes: mosaic.bytes,
        };
        let months = choice.break_even_months(&pricing);
        println!(
            "  {degrees} deg: CPU to recompute {}, mosaic {:.0} MB -> store for {months:.1} months",
            report.costs.cpu,
            mosaic.bytes as f64 / 1e6,
        );
        for horizon in [6.0, 24.0, 48.0] {
            println!(
                "      repeat within {horizon:>2.0} months? {}",
                if choice.archive_is_cheaper(&pricing, horizon) {
                    "archive it"
                } else {
                    "recompute on demand"
                }
            );
        }
    }
    println!("\n(the paper's rule of thumb, reproduced: archive anything you expect to serve again within ~2 years)");
}
