//! Replaying measured traces, the way the paper did.
//!
//! Section 5: "The sizes of these data files and the runtime of the tasks
//! were taken from real runs of the workflow and provided as additional
//! input to the simulator." This example plays that pipeline end to end:
//! generate the DAG, overlay "measured" runtimes and sizes from CSV
//! snippets, and re-price the execution plan.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use montage_cloud::montage::{apply_runtime_overrides, apply_size_overrides};
use montage_cloud::prelude::*;

fn main() {
    let wf = montage_1_degree();
    let baseline = simulate(&wf, &ExecConfig::fixed(8));
    println!(
        "synthetic calibration: {} at {:.2} h on 8 processors",
        baseline.total_cost(),
        baseline.makespan_hours()
    );

    // Suppose a real run measured mAdd and mBgModel slower than the
    // calibration, and the final mosaic came out larger.
    let runtime_trace = "\
# task,runtime_s        (measured on the reference CPU)
mAdd,412.0
mBgModel,205.5
mShrink,88.0
";
    let size_trace = "\
# file,bytes            (measured products)
mosaic_M17.fits,201000000
mosaic_M17_small.fits,2010000
";
    let wf = apply_runtime_overrides(&wf, runtime_trace).expect("runtime trace applies");
    let wf = apply_size_overrides(&wf, size_trace).expect("size trace applies");

    let traced = simulate(&wf, &ExecConfig::fixed(8));
    println!(
        "with measured traces:  {} at {:.2} h on 8 processors",
        traced.total_cost(),
        traced.makespan_hours()
    );
    println!(
        "delta: {} and {:+.1} minutes\n",
        traced.total_cost() - baseline.total_cost(),
        (traced.makespan_hours() - baseline.makespan_hours()) * 60.0
    );

    // The archival economics shift with the measured mosaic size too.
    let pricing = Pricing::amazon_2008();
    let mosaic = wf
        .staged_out_files()
        .iter()
        .map(|&f| wf.file(f).clone())
        .find(|f| f.name.ends_with(".fits"))
        .unwrap();
    let on_demand = simulate(&wf, &ExecConfig::paper_default());
    let archive = ArchiveOrRecompute {
        recompute_cost: on_demand.costs.cpu,
        product_bytes: mosaic.bytes,
    };
    println!(
        "measured mosaic is {:.0} MB; archive break-even now {:.1} months",
        mosaic.bytes as f64 / 1e6,
        archive.break_even_months(&pricing)
    );
}
