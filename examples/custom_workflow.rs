//! Build your own workflow: the paper's Figure 3 example, by hand, through
//! the public DAG API — then compare the three data-management modes on
//! it, round-trip it through DAX XML, and emit a Graphviz rendering.
//!
//! This is the workflow Section 3 uses to *define* the modes: seven tasks,
//! one external input `a`, intermediates `b..f`, and net outputs `g`, `h`.
//!
//! ```text
//! cargo run --release --example custom_workflow
//! ```

use montage_cloud::dag::{from_dax, to_dax, to_dot, DotStyle};
use montage_cloud::prelude::*;

fn main() {
    // --- build Figure 3 with the builder API -------------------------------
    let mb = 25_000_000u64; // 25 MB per file = 20 s on the 10 Mbps link
    let mut b = WorkflowBuilder::new("figure3_by_hand");
    let a = b.file("a", mb);
    let fb = b.file("b", mb);
    let c1 = b.file("c1", mb);
    let c2 = b.file("c2", mb);
    let d = b.file("d", mb);
    let e = b.file("e", mb);
    let f = b.file("f", mb);
    let h = b.file("h", mb);
    let g = b.file("g", mb);
    b.add_task("task0", "stage", 120.0, &[a], &[fb]).unwrap();
    b.add_task("task1", "stage", 120.0, &[fb], &[c1]).unwrap();
    b.add_task("task2", "stage", 120.0, &[fb], &[c2]).unwrap();
    b.add_task("task3", "stage", 120.0, &[c1], &[d]).unwrap();
    b.add_task("task4", "stage", 120.0, &[c1], &[e]).unwrap();
    b.add_task("task5", "stage", 120.0, &[c2], &[f, h]).unwrap();
    b.add_task("task6", "gather", 120.0, &[d, e, f], &[g])
        .unwrap();
    let wf = b.build().unwrap();

    println!(
        "{}: {} tasks over {} levels; external inputs: {:?}; net outputs: {:?}\n",
        wf.name(),
        wf.num_tasks(),
        wf.depth(),
        wf.external_inputs()
            .iter()
            .map(|&id| wf.file(id).name.as_str())
            .collect::<Vec<_>>(),
        wf.staged_out_files()
            .iter()
            .map(|&id| wf.file(id).name.as_str())
            .collect::<Vec<_>>(),
    );

    // --- the three modes, exactly as Section 3 narrates them ---------------
    for point in mode_matrix(&wf, &ExecConfig::paper_default()) {
        let r = &point.report;
        println!(
            "{:>10}: in {:>5.1} MB, out {:>5.1} MB, storage {:.4} GBh, DM cost {}",
            point.mode.label(),
            r.gb_in() * 1000.0,
            r.gb_out() * 1000.0,
            r.storage_gb_hours(),
            r.costs.data_management(),
        );
    }

    // --- interchange -------------------------------------------------------
    let dax = to_dax(&wf);
    let back = from_dax(&dax).expect("our own DAX always parses");
    assert_eq!(back.num_tasks(), wf.num_tasks());
    println!("\nDAX round-trip OK ({} bytes); first lines:", dax.len());
    for line in dax.lines().take(5) {
        println!("  {line}");
    }

    let dot = to_dot(&wf, DotStyle::Tasks);
    println!("\nGraphviz (pipe into `dot -Tpng`):\n{dot}");
}
