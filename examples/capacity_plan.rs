//! The inverse of the paper's question: instead of pricing a given plan,
//! find the cheapest auto-scale pool that *meets a promise* — a p99
//! turnaround SLO against a seeded, diurnally-modulated demand forecast.
//!
//! The planner replays the identical arrival stream against a grid of
//! pool configurations (floor, ceiling, scale-up trigger, overflow
//! policy), evaluated in parallel on the worker pool, and recommends the
//! cheapest one that serves every request within the SLO.
//!
//! ```text
//! cargo run --release --example capacity_plan
//! ```

use montage_cloud::prelude::*;

fn main() {
    // A week of mixed demand: mostly 1-degree mosaics, some 2-degree,
    // the occasional 4-degree survey, swinging 30% over the day.
    let spec = PlanSpec::new(
        /* p99 SLO, hours */ 7.0, /* req/h */ 3.0, /* horizon */ 168.0,
    );
    let plan = plan_capacity(&spec).expect("valid spec");

    print!("{}", plan_text(&spec, &plan));

    // The frontier is the menu: every point is a cost/latency trade the
    // operator could defensibly pick.
    println!("\ncost-vs-p99 frontier:");
    for &i in &plan.frontier {
        let c = &plan.candidates[i];
        println!(
            "  min={} max={} up={} policy p99={:.2} h for ${:.2}",
            c.cfg.min_slots,
            c.cfg.max_slots,
            c.cfg.scale_up_queue,
            c.p99_turnaround_hours,
            c.total_cost.dollars()
        );
    }
    if let Some(best) = plan.best_candidate() {
        println!(
            "\nthe SLO costs ${:.2} for the week; the cheapest grid point \
             (ignoring the promise) runs ${:.2} — the gap is the price of \
             the guarantee.",
            best.total_cost.dollars(),
            plan.candidates
                .iter()
                .map(|c| c.total_cost.dollars())
                .fold(f64::INFINITY, f64::min)
        );
    }
}
