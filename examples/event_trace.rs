//! Event tracing: watch a simulation run, event by event.
//!
//! Runs the paper's 1-degree mosaic through the engine with a recording
//! sink attached, cross-checks the event-derived aggregates against the
//! `Report`, derives utilization/occupancy timeseries, and writes both
//! trace exports (JSON Lines and Chrome `trace_event` for Perfetto).
//!
//! ```text
//! cargo run --release --example event_trace
//! ```

use montage_cloud::prelude::*;

fn main() {
    let wf = montage_1_degree();
    let cfg = ExecConfig::fixed(8);
    let (report, sink) = simulate_traced(&wf, &cfg);

    // The counters are running sums over the event stream; they agree
    // exactly with the aggregates the engine reports.
    let c = sink.counters();
    println!("events        {}", c.events);
    println!(
        "tasks         {} started, {} ok, {} failed",
        c.tasks_started, c.tasks_succeeded, c.tasks_failed
    );
    println!(
        "transfers in  {} carrying {} B (report: {} / {} B)",
        c.transfers_in, c.bytes_in, report.transfers_in, report.bytes_in
    );
    println!(
        "transfers out {} carrying {} B (report: {} / {} B)",
        c.transfers_out, c.bytes_out, report.transfers_out, report.bytes_out
    );
    assert_eq!(c.bytes_in, report.bytes_in);
    assert_eq!(c.bytes_out, report.bytes_out);

    // Derived timeseries: peak concurrency and the storage-occupancy
    // curve whose integral is what Amazon bills for.
    let peak_tasks = sink
        .concurrency_series()
        .iter()
        .map(|&(_, n)| n)
        .max()
        .unwrap_or(0);
    println!(
        "peak          {} concurrent tasks, {:.3} GB storage",
        peak_tasks,
        sink.storage_peak_bytes() / 1e9
    );
    println!(
        "storage       {:.3} GB-h from events (report: {:.3} GB-h)",
        sink.storage_byte_seconds(sink.end_time()) / 1e9 / 3600.0,
        report.storage_gb_hours()
    );
    println!(
        "utilization   {:.0}% from events (report: {:.0}%)",
        sink.cpu_utilization(8, sink.end_time()) * 100.0,
        report.cpu_utilization * 100.0
    );

    // Exports: JSONL for grep/jq pipelines, Chrome JSON for Perfetto.
    let dir = std::env::temp_dir();
    let jsonl_path = dir.join("montage_1deg.trace.jsonl");
    let chrome_path = dir.join("montage_1deg.trace.json");
    std::fs::write(&jsonl_path, trace_to_jsonl(&wf, sink.events())).unwrap();
    std::fs::write(&chrome_path, trace_to_chrome(&wf, sink.events())).unwrap();
    println!("\nwrote {}", jsonl_path.display());
    println!("wrote {} (open in ui.perfetto.dev)", chrome_path.display());

    // The service layer narrates request lifecycles through the same
    // sink type: queued -> started (venue) -> finished.
    let arrivals = periodic(0.5, 24.0, 1.0);
    let mut svc_sink = RecordingSink::new();
    let svc = simulate_service_with_sink(&arrivals, &ServiceConfig::default_burst(), &mut svc_sink);
    println!(
        "\nservice day   {} requests ({} local, {} cloud), {} span events",
        svc.requests(),
        svc.local_requests(),
        svc.cloud_requests(),
        svc_sink.events().len()
    );
    print!(
        "{}",
        service_trace_jsonl(&svc_sink.events()[..6.min(svc_sink.events().len())])
    );
}
