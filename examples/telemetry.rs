//! Self-telemetry: every layer of the simulator as a metrics registry.
//!
//! Runs the canonical 1-degree fault scenario and prints three
//! expositions:
//!
//! 1. the **kernel's** deterministic counters (calendar queue, ready set,
//!    processor pool) from `Report::registry` — byte-identical across
//!    runs, machines, and `MCLOUD_WORKERS` settings, so CI pins them as a
//!    golden file;
//! 2. the **service layer's** streamed request statistics from
//!    `ServiceReport::registry` — histograms folded as requests complete,
//!    never materialized;
//! 3. the **worker pool's** wall-clock lane counters — scheduling-
//!    dependent by design, so they carry the wall-clock metric class and
//!    only render through `prometheus_text_all`.
//!
//! ```text
//! cargo run --release --example telemetry
//! ```

use montage_cloud::prelude::*;

fn main() {
    // Layer 1: the engine kernel. Same scenario as the committed golden
    // exposition (crates/cli/tests/golden/metrics_faults_1deg.prom).
    let wf = montage_1_degree();
    let cfg = ExecConfig::fixed(8)
        .with_fault_model(montage_cloud::core::FaultModel {
            task_failure_prob: 0.05,
            transfer_failure_prob: 0.05,
            proc_mttf_s: 5000.0,
            seed: 2008,
        })
        .with_retry(montage_cloud::core::RetryPolicy::bounded(3));
    let report = simulate(&wf, &cfg);
    println!("=== kernel (deterministic; golden-stable) ===");
    print!("{}", report.registry().prometheus_text());

    // Layer 3: the service queue, statistics folded in constant memory.
    let arrivals = poisson(2.0, 200.0, 1.0, 7);
    let svc = simulate_service(&arrivals, &ServiceConfig::default_burst());
    println!("\n=== service (deterministic; streamed folds) ===");
    print!("{}", svc.prometheus_text());
    println!(
        "\n(p95 turnaround {:.2} h over {} requests, backlog peak {:.0})",
        svc.turnaround_quantile(0.95),
        svc.requests(),
        svc.backlog_peak
    );

    // Layer 2: the worker pool. Fan a sweep out, then read the lanes.
    // Which lane did what is a race — hence the wall-clock class, which
    // the deterministic render refuses to show.
    let ladder = geometric_processors(32);
    let points =
        processor_sweep_progress(&wf, &ExecConfig::paper_default(), &ladder, &|done, n| {
            eprint!("\rsweep {done}/{n}");
        });
    eprintln!();
    assert_eq!(points.len(), ladder.len());
    let pool = WorkerPool::global();
    let wall = pool.registry();
    assert_eq!(wall.prometheus_text(), ""); // wall-clock never in goldens
    println!("=== worker pool (wall-clock; never in goldens) ===");
    print!("{}", wall.prometheus_text_all());

    // The JSON snapshot carries the same numbers for dashboards.
    let json = report.registry().json();
    assert!(json.contains("mcloud_kernel_queue_pops_total"));
    println!("\nkernel JSON snapshot: {} bytes", json.len());
}
